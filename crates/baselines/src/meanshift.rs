//! Mean shift clustering (Comaniciu & Meer, PAMI 2002).
//!
//! A mode-seeking, centroid-free baseline: every point is shifted toward
//! the weighted mean of its neighborhood until it converges onto a density
//! mode, and points sharing a mode form a cluster. Like DBSCAN it makes no
//! assumption on cluster shape being convex, but unlike AdaWave it has no
//! explicit noise notion — modes supported by very few points can optionally
//! be treated as noise via `min_cluster_size`.

use std::borrow::Cow;

use adawave_api::{PointMatrix, PointsView};
use adawave_runtime::Runtime;

use crate::cellgrid::CellGrid;
use crate::{Clustering, KdIndex};

/// Rows per parallel work unit of the mode-seeking pass (fixed so the
/// chunking never depends on the thread count).
const MODE_CHUNK_ROWS: usize = 256;

/// Kernel used to weight neighborhood members during the shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeanShiftKernel {
    /// Every neighbor within the bandwidth gets weight 1.
    Flat,
    /// Neighbors are weighted by `exp(-||x - y||² / (2 bandwidth²))`.
    Gaussian,
}

/// Configuration for [`mean_shift`].
#[derive(Debug, Clone)]
pub struct MeanShiftConfig {
    /// Neighborhood radius of the kernel.
    pub bandwidth: f64,
    /// Kernel weighting.
    pub kernel: MeanShiftKernel,
    /// Maximum number of shift iterations per point.
    pub max_iterations: usize,
    /// Convergence tolerance on the shift length.
    pub tolerance: f64,
    /// Modes supported by fewer than this many points are labeled noise.
    pub min_cluster_size: usize,
    /// Worker pool for the per-point mode-seeking iterations (every point
    /// shifts independently, so labels never depend on the thread count).
    pub runtime: Runtime,
}

impl Default for MeanShiftConfig {
    fn default() -> Self {
        Self {
            bandwidth: 0.1,
            kernel: MeanShiftKernel::Flat,
            max_iterations: 100,
            tolerance: 1e-4,
            min_cluster_size: 1,
            runtime: Runtime::from_env(),
        }
    }
}

impl MeanShiftConfig {
    /// Create a configuration with the given bandwidth and defaults for the
    /// remaining fields.
    pub fn new(bandwidth: f64) -> Self {
        Self {
            bandwidth,
            ..Self::default()
        }
    }
}

/// The mode-seeking kernel of mean shift over a fixed training density:
/// iterate a query toward the weighted mean of its neighborhood until it
/// converges onto a mode. Shared between [`mean_shift`] (which seeks a
/// mode per training point) and the trained model's out-of-sample
/// prediction (which replays the identical dynamics for a query point, so
/// a training point re-predicted lands on exactly the same mode).
pub(crate) struct ModeSeeker<'a> {
    points: PointsView<'a>,
    index: Cow<'a, KdIndex>,
    bandwidth: f64,
    two_sigma_sq: f64,
    kernel: MeanShiftKernel,
    max_iterations: usize,
    tolerance: f64,
}

impl<'a> ModeSeeker<'a> {
    /// Index the training points for neighborhood queries.
    pub(crate) fn new(
        points: PointsView<'a>,
        bandwidth: f64,
        kernel: MeanShiftKernel,
        max_iterations: usize,
        tolerance: f64,
    ) -> Self {
        Self::with_index(
            points,
            Cow::Owned(KdIndex::build(points)),
            bandwidth,
            kernel,
            max_iterations,
            tolerance,
        )
    }

    /// Reuse an already-built index over `points` (trained models cache
    /// one, so serving a single point does not re-index the training set).
    pub(crate) fn with_index(
        points: PointsView<'a>,
        index: Cow<'a, KdIndex>,
        bandwidth: f64,
        kernel: MeanShiftKernel,
        max_iterations: usize,
        tolerance: f64,
    ) -> Self {
        let bandwidth = bandwidth.max(1e-12);
        Self {
            points,
            index,
            bandwidth,
            two_sigma_sq: 2.0 * bandwidth * bandwidth,
            kernel,
            max_iterations,
            tolerance,
        }
    }

    /// Shift `point` to its mode, writing the trajectory into the
    /// caller-provided scratch buffers; `current` ends on the mode.
    pub(crate) fn seek(&self, point: &[f64], current: &mut [f64], mean: &mut [f64]) {
        current.copy_from_slice(point);
        for _ in 0..self.max_iterations {
            let neighbors = self
                .index
                .within_radius(self.points, current, self.bandwidth);
            if neighbors.is_empty() {
                break;
            }
            mean.iter_mut().for_each(|m| *m = 0.0);
            let mut total_weight = 0.0;
            for &j in &neighbors {
                let weight = match self.kernel {
                    MeanShiftKernel::Flat => 1.0,
                    MeanShiftKernel::Gaussian => {
                        let d2 = adawave_linalg::squared_distance(current, self.points.row(j));
                        (-d2 / self.two_sigma_sq).exp()
                    }
                };
                for (m, v) in mean.iter_mut().zip(self.points.row(j).iter()) {
                    *m += weight * v;
                }
                total_weight += weight;
            }
            for m in mean.iter_mut() {
                *m /= total_weight;
            }
            let shift = adawave_linalg::squared_distance(mean, current).sqrt();
            current.copy_from_slice(mean);
            if shift < self.tolerance {
                break;
            }
        }
    }

    /// The exact merge predicate: Euclidean distance (rooted — the strict
    /// `<=` comparison must happen in distance space to keep merge
    /// decisions bit-identical to the historical scan) within the radius.
    pub(crate) fn within_merge_radius(rep: &[f64], mode: &[f64], merge_radius: f64) -> bool {
        adawave_linalg::squared_distance(mode, rep).sqrt() <= merge_radius
    }

    /// The first representative (in creation order) within the merge
    /// radius of `mode` — the same scan [`mean_shift`] uses to merge
    /// training modes, so replayed queries merge identically.
    pub(crate) fn merge_to(
        representatives: &PointMatrix,
        mode: &[f64],
        merge_radius: f64,
    ) -> Option<usize> {
        representatives
            .rows()
            .position(|rep| Self::within_merge_radius(rep, mode, merge_radius))
    }
}

/// Run mean shift. Returns the flat clustering; points whose mode attracts
/// fewer than `min_cluster_size` points are noise.
pub fn mean_shift(points: PointsView<'_>, config: &MeanShiftConfig) -> Clustering {
    Clustering::new(mean_shift_parts(points, config).0)
}

/// The internals [`mean_shift`] and the trained-model adapter share: the
/// post-demotion raw assignment (representative index per point, `None`
/// for members of demoted tiny clusters), the mode representatives in
/// creation order, and the per-representative kept/demoted verdicts.
pub(crate) fn mean_shift_parts(
    points: PointsView<'_>,
    config: &MeanShiftConfig,
) -> (Vec<Option<usize>>, PointMatrix, Vec<bool>) {
    let n = points.len();
    if n == 0 {
        return (Vec::new(), PointMatrix::new(points.dims()), Vec::new());
    }
    let dims = points.dims();
    let seeker = ModeSeeker::new(
        points,
        config.bandwidth,
        config.kernel,
        config.max_iterations,
        config.tolerance,
    );
    let bandwidth = config.bandwidth.max(1e-12);

    // Shift every point to its mode (modes live in one flat buffer too).
    // Every point's trajectory is independent of the others, so the
    // mode-seeking pass fans out over the runtime in fixed row chunks and
    // the resulting modes are identical for every thread count.
    let modes = if dims == 0 {
        let mut zero_dim = PointMatrix::new(0);
        for _ in 0..n {
            zero_dim.push_row(&[]);
        }
        zero_dim
    } else {
        let mut buffer = vec![0.0; n * dims];
        config
            .runtime
            .par_chunks_mut(&mut buffer, MODE_CHUNK_ROWS * dims, |chunk_idx, rows| {
                let base = chunk_idx * MODE_CHUNK_ROWS;
                let mut current = vec![0.0; dims];
                let mut mean = vec![0.0; dims];
                for (local, out) in rows.chunks_exact_mut(dims).enumerate() {
                    seeker.seek(points.row(base + local), &mut current, &mut mean);
                    out.copy_from_slice(&current);
                }
            });
        PointMatrix::from_flat(buffer, dims).expect("n x dims by construction")
    };

    // Merge modes closer than bandwidth / 2 into a single cluster. A hash
    // grid over 2×merge_radius cells prunes the representative scan to the
    // 3^d surrounding cells; the exact [`ModeSeeker::merge_to`] predicate
    // decides on the candidates and the minimum matching index equals the
    // linear scan's first match, so labels are identical to brute force
    // (which remains the fallback for degenerate radii or high dims).
    let merge_radius = bandwidth / 2.0;
    let mut representatives = PointMatrix::new(dims);
    let mut assignment: Vec<Option<usize>> = Vec::with_capacity(n);
    let mut grid = CellGrid::try_new(dims, merge_radius);
    for mode in modes.rows() {
        let found = match grid.as_mut() {
            Some(grid) => grid.min_matching(mode, |c| {
                ModeSeeker::within_merge_radius(representatives.row(c), mode, merge_radius)
            }),
            None => ModeSeeker::merge_to(&representatives, mode, merge_radius),
        };
        match found {
            Some(c) => assignment.push(Some(c)),
            None => {
                representatives.push_row(mode);
                if let Some(grid) = grid.as_mut() {
                    grid.insert(representatives.len() - 1, mode);
                }
                assignment.push(Some(representatives.len() - 1));
            }
        }
    }

    // Demote tiny clusters to noise.
    let mut kept = vec![true; representatives.len()];
    if config.min_cluster_size > 1 {
        let mut sizes = vec![0usize; representatives.len()];
        for a in assignment.iter().flatten() {
            sizes[*a] += 1;
        }
        for (keep, size) in kept.iter_mut().zip(sizes.iter()) {
            *keep = *size >= config.min_cluster_size;
        }
        for a in assignment.iter_mut() {
            if let Some(c) = a {
                if !kept[*c] {
                    *a = None;
                }
            }
        }
    }
    (assignment, representatives, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami, NOISE_LABEL};

    fn three_blobs() -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(77);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        for (c, center) in [[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]].iter().enumerate() {
            shapes::gaussian_blob(&mut points, &mut rng, center, &[0.03, 0.03], 120);
            truth.extend(std::iter::repeat_n(c, 120));
        }
        (points, truth)
    }

    #[test]
    fn recovers_three_blobs() {
        let (points, truth) = three_blobs();
        let clustering = mean_shift(points.view(), &MeanShiftConfig::new(0.15));
        assert_eq!(
            clustering.cluster_count(),
            3,
            "sizes {:?}",
            clustering.cluster_sizes()
        );
        let score = ami(&truth, &clustering.to_labels(NOISE_LABEL));
        assert!(score > 0.95, "AMI {score}");
    }

    #[test]
    fn gaussian_kernel_also_recovers_blobs() {
        let (points, truth) = three_blobs();
        let config = MeanShiftConfig {
            bandwidth: 0.15,
            kernel: MeanShiftKernel::Gaussian,
            ..MeanShiftConfig::default()
        };
        let clustering = mean_shift(points.view(), &config);
        let score = ami(&truth, &clustering.to_labels(NOISE_LABEL));
        assert!(score > 0.9, "AMI {score}");
    }

    #[test]
    fn grid_accelerated_mode_merge_matches_brute_force_scan() {
        // Padding every point with constant-zero dimensions changes no
        // distance and no mode trajectory, but pushes the dimensionality
        // past the cell grid's limit, so mode merging falls back to the
        // brute-force linear scan. Labels must match the grid-accelerated
        // 2-d run point for point.
        let (points, _) = three_blobs();
        let mut padded = PointMatrix::new(5);
        for row in points.rows() {
            padded.push_row(&[row[0], row[1], 0.0, 0.0, 0.0]);
        }
        let config = MeanShiftConfig::new(0.15);
        let accelerated = mean_shift(points.view(), &config);
        let brute = mean_shift(padded.view(), &config);
        assert_eq!(accelerated, brute);
    }

    #[test]
    fn min_cluster_size_marks_stray_points_as_noise() {
        let (mut points, _) = three_blobs();
        // A far-away stray point becomes its own mode.
        points.push_row(&[3.0, 3.0]);
        let config = MeanShiftConfig {
            bandwidth: 0.15,
            min_cluster_size: 5,
            ..MeanShiftConfig::default()
        };
        let clustering = mean_shift(points.view(), &config);
        assert_eq!(clustering.label(points.len() - 1), None);
        assert_eq!(clustering.cluster_count(), 3);
    }

    #[test]
    fn oversized_bandwidth_merges_everything() {
        let (points, _) = three_blobs();
        let clustering = mean_shift(points.view(), &MeanShiftConfig::new(10.0));
        assert_eq!(clustering.cluster_count(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(mean_shift(PointMatrix::new(2).view(), &MeanShiftConfig::default()).is_empty());
    }

    #[test]
    fn deterministic() {
        let (points, _) = three_blobs();
        let config = MeanShiftConfig::new(0.12);
        assert_eq!(
            mean_shift(points.view(), &config),
            mean_shift(points.view(), &config)
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let (points, _) = three_blobs();
        let sequential = mean_shift(
            points.view(),
            &MeanShiftConfig {
                runtime: Runtime::sequential(),
                ..MeanShiftConfig::new(0.12)
            },
        );
        for threads in [2, 8] {
            let parallel = mean_shift(
                points.view(),
                &MeanShiftConfig {
                    runtime: Runtime::with_threads(threads),
                    ..MeanShiftConfig::new(0.12)
                },
            );
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }
}
