//! EM for full-covariance Gaussian mixtures (the model-based baseline).
//!
//! "A multivariate Gaussian probability distribution model is used to
//! estimate the probability that a data point belongs to a cluster, with
//! each cluster regarded as a Gaussian model" (§V-A). Initialized from
//! k-means, covariances regularized with a small ridge for numerical
//! stability, responsibilities computed with the log-sum-exp trick.

use adawave_api::{PointMatrix, PointsView};
use adawave_linalg::{covariance_matrix, Cholesky, Matrix};
use adawave_runtime::Runtime;

use crate::kmeans::{kmeans, KMeansConfig};
use crate::Clustering;

/// Configuration for [`em`].
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Number of mixture components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the mean log-likelihood improvement.
    pub tolerance: f64,
    /// Ridge added to covariance diagonals.
    pub regularization: f64,
    /// RNG seed (used by the k-means initialization).
    pub seed: u64,
    /// Worker pool forwarded to the k-means initialization (the EM loop
    /// itself is sequential).
    pub runtime: Runtime,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iterations: 100,
            tolerance: 1e-5,
            regularization: 1e-6,
            seed: 0,
            runtime: Runtime::from_env(),
        }
    }
}

impl EmConfig {
    /// Convenience constructor fixing `k` and the seed.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            seed,
            ..Default::default()
        }
    }
}

/// A fitted Gaussian mixture model.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    /// Mixing weights, one per component.
    pub weights: Vec<f64>,
    /// Component means, one row per component (flat row-major).
    pub means: PointMatrix,
    /// Component covariance matrices.
    pub covariances: Vec<Matrix>,
    /// Final mean log-likelihood of the training data.
    pub log_likelihood: f64,
    /// EM iterations performed.
    pub iterations: usize,
}

impl GaussianMixture {
    /// Log-density of a point under component `c`.
    pub fn component_log_density(&self, point: &[f64], c: usize) -> f64 {
        let dims = point.len() as f64;
        let chol = match self.covariances[c].cholesky() {
            Ok(ch) => ch,
            Err(_) => return f64::NEG_INFINITY,
        };
        let diff: Vec<f64> = point
            .iter()
            .zip(self.means.row(c).iter())
            .map(|(x, m)| x - m)
            .collect();
        let maha = chol.mahalanobis_squared(&diff);
        -0.5 * (dims * (2.0 * std::f64::consts::PI).ln() + chol.log_determinant() + maha)
    }

    /// Posterior responsibilities of every component for a point.
    pub fn responsibilities(&self, point: &[f64]) -> Vec<f64> {
        let log_joint: Vec<f64> = (0..self.weights.len())
            .map(|c| self.weights[c].max(1e-300).ln() + self.component_log_density(point, c))
            .collect();
        let max = log_joint.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut resp: Vec<f64> = log_joint.iter().map(|&l| (l - max).exp()).collect();
        let sum: f64 = resp.iter().sum();
        if sum > 0.0 {
            for r in &mut resp {
                *r /= sum;
            }
        }
        resp
    }

    /// Hard assignment of a point (most responsible component).
    pub fn predict(&self, point: &[f64]) -> usize {
        let resp = self.responsibilities(point);
        resp.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Covariance of the member rows of a shared matrix, regularized for
/// numerical stability — computed straight off the index list, no cloned
/// member subset.
fn regularized_covariance(
    points: PointsView<'_>,
    members: &[usize],
    dims: usize,
    reg: f64,
) -> Matrix {
    let mut cov = covariance_matrix(members.iter().map(|&i| points.row(i)), dims);
    cov.add_diagonal(reg.max(1e-9));
    // If still not SPD (e.g. single-point cluster), fall back to identity-ish.
    if cov.cholesky().is_err() {
        let mut fallback = Matrix::identity(dims);
        fallback.add_diagonal(reg);
        return fallback;
    }
    cov
}

/// Fit a Gaussian mixture with EM and return the model plus the hard
/// clustering of the training points.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn em(points: PointsView<'_>, config: &EmConfig) -> (GaussianMixture, Clustering) {
    assert!(!points.is_empty(), "em: empty input");
    assert!(config.k >= 1, "em: k must be >= 1");
    let n = points.len();
    let dims = points.dims();
    let k = config.k.min(n);

    // Initialize from k-means.
    let init = kmeans(
        points,
        &KMeansConfig {
            runtime: config.runtime,
            ..KMeansConfig::new(k, config.seed)
        },
    );
    let clusters = init.clustering.clusters();
    let mut weights: Vec<f64> = clusters
        .iter()
        .map(|members| (members.len().max(1)) as f64 / n as f64)
        .collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= wsum;
    }
    let mut means: PointMatrix = init.centroids.clone();
    let mut covariances: Vec<Matrix> = clusters
        .iter()
        .map(|members| regularized_covariance(points, members, dims, config.regularization))
        .collect();

    let mut model = GaussianMixture {
        weights,
        means,
        covariances,
        log_likelihood: f64::NEG_INFINITY,
        iterations: 0,
    };

    let mut resp = vec![vec![0.0; k]; n];
    let mut prev_ll = f64::NEG_INFINITY;
    for iter in 0..config.max_iterations {
        model.iterations = iter + 1;
        // E-step.
        let mut ll = 0.0;
        // Pre-factor the covariances once per iteration.
        let chols: Vec<Option<Cholesky>> = model
            .covariances
            .iter()
            .map(|c| c.cholesky().ok())
            .collect();
        for (i, p) in points.rows().enumerate() {
            let mut log_joint = vec![f64::NEG_INFINITY; k];
            for c in 0..k {
                if let Some(chol) = &chols[c] {
                    let diff: Vec<f64> = p
                        .iter()
                        .zip(model.means.row(c).iter())
                        .map(|(x, m)| x - m)
                        .collect();
                    let maha = chol.mahalanobis_squared(&diff);
                    let log_density = -0.5
                        * (dims as f64 * (2.0 * std::f64::consts::PI).ln()
                            + chol.log_determinant()
                            + maha);
                    log_joint[c] = model.weights[c].max(1e-300).ln() + log_density;
                }
            }
            let max = log_joint.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let sum_exp: f64 = log_joint.iter().map(|&l| (l - max).exp()).sum();
            let log_norm = max + sum_exp.ln();
            ll += log_norm;
            for c in 0..k {
                resp[i][c] = (log_joint[c] - log_norm).exp();
            }
        }
        ll /= n as f64;
        model.log_likelihood = ll;

        // M-step.
        let nk: Vec<f64> = (0..k)
            .map(|c| resp.iter().map(|r| r[c]).sum::<f64>().max(1e-12))
            .collect();
        means = PointMatrix::from_flat(vec![0.0; k * dims], dims).expect("k x dims");
        for (i, p) in points.rows().enumerate() {
            for (c, &r) in resp[i].iter().enumerate() {
                for (m, v) in means.row_mut(c).iter_mut().zip(p.iter()) {
                    *m += r * v;
                }
            }
        }
        for (c, &norm) in nk.iter().enumerate() {
            for m in means.row_mut(c).iter_mut() {
                *m /= norm;
            }
        }
        covariances = Vec::with_capacity(k);
        for c in 0..k {
            let mut cov = Matrix::zeros(dims, dims);
            for (i, p) in points.rows().enumerate() {
                let r = resp[i][c];
                if r < 1e-12 {
                    continue;
                }
                let mean_c = means.row(c);
                for a in 0..dims {
                    let da = p[a] - mean_c[a];
                    for b in a..dims {
                        let db = p[b] - mean_c[b];
                        cov[(a, b)] += r * da * db;
                    }
                }
            }
            for a in 0..dims {
                for b in a..dims {
                    cov[(a, b)] /= nk[c];
                    cov[(b, a)] = cov[(a, b)];
                }
            }
            cov.add_diagonal(config.regularization.max(1e-9));
            covariances.push(cov);
        }
        model.weights = nk.iter().map(|&s| s / n as f64).collect();
        model.means = means.clone();
        model.covariances = covariances.clone();

        if (ll - prev_ll).abs() < config.tolerance {
            break;
        }
        prev_ll = ll;
    }

    let assignment: Vec<Option<usize>> = points.rows().map(|p| Some(model.predict(p))).collect();
    (model, Clustering::new(assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::ami;

    fn two_gaussians(seed: u64) -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.4, 0.2], 250);
        labels.extend(std::iter::repeat_n(0, 250));
        shapes::gaussian_blob(&mut points, &mut rng, &[3.0, 3.0], &[0.2, 0.5], 250);
        labels.extend(std::iter::repeat_n(1, 250));
        (points, labels)
    }

    #[test]
    fn recovers_two_gaussians() {
        let (points, labels) = two_gaussians(1);
        let (model, clustering) = em(points.view(), &EmConfig::new(2, 3));
        let score = ami(&labels, &clustering.to_labels(usize::MAX));
        assert!(score > 0.95, "AMI {score}");
        assert_eq!(model.weights.len(), 2);
        assert!((model.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Means are close to the true centres (in some order).
        let near =
            |m: &[f64], c: [f64; 2]| ((m[0] - c[0]).powi(2) + (m[1] - c[1]).powi(2)).sqrt() < 0.2;
        assert!(
            (near(&model.means[0], [0.0, 0.0]) && near(&model.means[1], [3.0, 3.0]))
                || (near(&model.means[1], [0.0, 0.0]) && near(&model.means[0], [3.0, 3.0]))
        );
    }

    #[test]
    fn log_likelihood_is_monotone_enough() {
        // EM guarantees non-decreasing likelihood; allow tiny numerical slack
        // by comparing first and last.
        let (points, _) = two_gaussians(2);
        let (m_short, _) = em(
            points.view(),
            &EmConfig {
                max_iterations: 1,
                ..EmConfig::new(2, 5)
            },
        );
        let (m_long, _) = em(
            points.view(),
            &EmConfig {
                max_iterations: 30,
                ..EmConfig::new(2, 5)
            },
        );
        assert!(m_long.log_likelihood >= m_short.log_likelihood - 1e-9);
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let (points, _) = two_gaussians(3);
        let (model, _) = em(points.view(), &EmConfig::new(2, 1));
        for p in points.rows().take(20) {
            let r = model.responsibilities(p);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn anisotropic_clusters_fit_better_than_kmeans_would() {
        // Two elongated, slightly overlapping Gaussians rotated differently:
        // EM with full covariance should still separate them decently.
        let mut rng = Rng::new(4);
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        shapes::gaussian_ellipse(&mut points, &mut rng, (0.0, 0.0), (1.0, 0.08), 0.0, 300);
        labels.extend(std::iter::repeat_n(0, 300));
        shapes::gaussian_ellipse(&mut points, &mut rng, (0.0, 1.0), (1.0, 0.08), 0.0, 300);
        labels.extend(std::iter::repeat_n(1, 300));
        let (_, clustering) = em(points.view(), &EmConfig::new(2, 7));
        let score = ami(&labels, &clustering.to_labels(usize::MAX));
        assert!(score > 0.8, "AMI {score}");
    }

    #[test]
    fn single_component_mean_is_dataset_mean() {
        let points =
            PointMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let (model, clustering) = em(points.view(), &EmConfig::new(1, 1));
        assert!((model.means[0][0] - 3.0).abs() < 1e-6);
        assert!((model.means[0][1] - 4.0).abs() < 1e-6);
        assert_eq!(clustering.cluster_count(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (points, _) = two_gaussians(5);
        let (_, a) = em(points.view(), &EmConfig::new(2, 9));
        let (_, b) = em(points.view(), &EmConfig::new(2, 9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        em(PointMatrix::new(2).view(), &EmConfig::new(2, 1));
    }
}
