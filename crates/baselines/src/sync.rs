//! Sync — Clustering by Synchronization (Böhm et al., KDD 2010).
//!
//! The related-work section of the AdaWave paper singles out Sync as a
//! density-based method whose `O(N²)` reliance on pair-wise interactions
//! makes it expensive on large data. Sync treats every point as a phase
//! oscillator (an extension of the Kuramoto model to feature space): in each
//! round a point moves by the average of `sin(x_j - x_i)` over its
//! `eps`-neighbors, so that mutually close points synchronize onto exactly
//! the same location. Clusters are the groups of synchronized points;
//! points that never synchronize with anyone are noise.

use adawave_api::{PointMatrix, PointsView};
use adawave_runtime::Runtime;

use crate::cellgrid::CellGrid;
use crate::{Clustering, KdTree};

/// Oscillators per parallel work unit of a synchronization round (fixed so
/// the per-chunk shift totals merge in the same order for every thread
/// count).
const SYNC_CHUNK_ROWS: usize = 512;

/// Configuration for [`sync_cluster`].
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// Interaction radius: only neighbors within `eps` pull on a point.
    pub eps: f64,
    /// Maximum number of synchronization rounds.
    pub max_rounds: usize,
    /// Two points are considered synchronized when every coordinate differs
    /// by less than this tolerance.
    pub merge_tolerance: f64,
    /// Stop early once the mean displacement of a round falls below this.
    pub convergence_tolerance: f64,
    /// Synchronized groups smaller than this are labeled noise.
    pub min_cluster_size: usize,
    /// Worker pool for the per-round oscillator updates (Jacobi-style: each
    /// round reads the previous state only, so every oscillator moves
    /// independently and the dynamics never depend on the thread count).
    pub runtime: Runtime,
}

impl Default for SyncConfig {
    fn default() -> Self {
        Self {
            eps: 0.1,
            max_rounds: 50,
            merge_tolerance: 1e-3,
            convergence_tolerance: 1e-5,
            min_cluster_size: 2,
            runtime: Runtime::from_env(),
        }
    }
}

impl SyncConfig {
    /// Create a configuration with the given interaction radius.
    pub fn new(eps: f64) -> Self {
        Self {
            eps,
            ..Self::default()
        }
    }
}

/// Run Sync and return the flat clustering.
pub fn sync_cluster(points: PointsView<'_>, config: &SyncConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    let dims = points.dims();
    // The oscillator state is a flat matrix that moves each round.
    let mut state = points.to_matrix();

    for _ in 0..config.max_rounds {
        // The interaction structure is recomputed every round on the moved
        // points (synchronization pulls new neighbors into range). Each
        // oscillator update reads only the previous round's state, so the
        // updates fan out over fixed row chunks; per-chunk shift totals
        // merge in chunk order, keeping every round bit-identical across
        // thread counts.
        let tree = KdTree::build(state.view());
        let mut next = state.clone();
        let state_ref = &state;
        let tree_ref = &tree;
        let shifts: Vec<f64> = config.runtime.par_chunks_mut(
            next.as_mut_slice(),
            (SYNC_CHUNK_ROWS * dims).max(1),
            |chunk_idx, rows| {
                let base = chunk_idx * SYNC_CHUNK_ROWS;
                let mut delta = vec![0.0; dims];
                let mut chunk_shift = 0.0;
                for (local, row) in rows.chunks_exact_mut(dims.max(1)).enumerate() {
                    let i = base + local;
                    let neighbors = tree_ref.within_radius(state_ref.row(i), config.eps);
                    let others: Vec<usize> = neighbors.into_iter().filter(|&j| j != i).collect();
                    if others.is_empty() {
                        continue;
                    }
                    delta.iter_mut().for_each(|d| *d = 0.0);
                    for &j in &others {
                        for ((d, &xj), &xi) in delta
                            .iter_mut()
                            .zip(state_ref.row(j).iter())
                            .zip(state_ref.row(i).iter())
                        {
                            *d += (xj - xi).sin();
                        }
                    }
                    for (coord, d) in row.iter_mut().zip(delta.iter()) {
                        let step = d / others.len() as f64;
                        *coord += step;
                        chunk_shift += step.abs();
                    }
                }
                chunk_shift
            },
        );
        let total_shift: f64 = shifts.iter().sum();
        state = next;
        if total_shift / (n as f64 * dims as f64) < config.convergence_tolerance {
            break;
        }
    }

    // Group synchronized points: two points belong to the same group when
    // every coordinate agrees within the merge tolerance. A hash grid over
    // 2×merge_tolerance-sized cells prunes the representative scan to the
    // 3^d surrounding cells (label-identical to the linear scan: the grid
    // probes a guaranteed candidate superset, the exact predicate decides,
    // and the minimum matching group id equals the scan's first match);
    // degenerate tolerances or high dims fall back to the linear scan.
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut groups = PointMatrix::new(dims);
    let mut grid = CellGrid::try_new(dims, config.merge_tolerance);
    for (i, s) in state.rows().enumerate() {
        let synced = |rep: &[f64]| {
            rep.iter()
                .zip(s.iter())
                .all(|(a, b)| (a - b).abs() <= config.merge_tolerance)
        };
        let found = match grid.as_mut() {
            Some(grid) => grid.min_matching(s, |g| synced(groups.row(g))),
            None => groups.rows().position(synced),
        };
        match found {
            Some(g) => assignment[i] = Some(g),
            None => {
                groups.push_row(s);
                if let Some(grid) = grid.as_mut() {
                    grid.insert(groups.len() - 1, s);
                }
                assignment[i] = Some(groups.len() - 1);
            }
        }
    }

    // Demote small groups to noise.
    let mut sizes = vec![0usize; groups.len()];
    for a in assignment.iter().flatten() {
        sizes[*a] += 1;
    }
    for a in assignment.iter_mut() {
        if let Some(g) = a {
            if sizes[*g] < config.min_cluster_size {
                *a = None;
            }
        }
    }
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami, NOISE_LABEL};

    fn two_blobs() -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(3);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.3, 0.3], &[0.02, 0.02], 100);
        truth.extend(std::iter::repeat_n(0usize, 100));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.7, 0.7], &[0.02, 0.02], 100);
        truth.extend(std::iter::repeat_n(1usize, 100));
        (points, truth)
    }

    #[test]
    fn synchronizes_two_blobs_into_two_clusters() {
        let (points, truth) = two_blobs();
        let clustering = sync_cluster(points.view(), &SyncConfig::new(0.12));
        assert!(
            clustering.cluster_count() >= 2,
            "clusters {}",
            clustering.cluster_count()
        );
        let score = ami(&truth, &clustering.to_labels(NOISE_LABEL));
        assert!(score > 0.8, "AMI {score}");
    }

    #[test]
    fn isolated_points_become_noise() {
        let (mut points, _) = two_blobs();
        points.push_row(&[5.0, 5.0]);
        points.push_row(&[-5.0, -5.0]);
        let clustering = sync_cluster(points.view(), &SyncConfig::new(0.12));
        assert_eq!(clustering.label(points.len() - 1), None);
        assert_eq!(clustering.label(points.len() - 2), None);
    }

    #[test]
    fn deterministic_and_order_insensitive_cluster_structure() {
        let (points, _) = two_blobs();
        let config = SyncConfig::new(0.12);
        let a = sync_cluster(points.view(), &config);
        let b = sync_cluster(points.view(), &config);
        assert_eq!(a, b);

        let mut reversed = points.clone();
        reversed.reverse_rows();
        let c = sync_cluster(reversed.view(), &config);
        assert_eq!(a.cluster_count(), c.cluster_count());
    }

    #[test]
    fn empty_input() {
        assert!(sync_cluster(PointMatrix::new(2).view(), &SyncConfig::default()).is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let (points, _) = two_blobs();
        let sequential = sync_cluster(
            points.view(),
            &SyncConfig {
                runtime: Runtime::sequential(),
                ..SyncConfig::new(0.12)
            },
        );
        for threads in [2, 8] {
            let parallel = sync_cluster(
                points.view(),
                &SyncConfig {
                    runtime: Runtime::with_threads(threads),
                    ..SyncConfig::new(0.12)
                },
            );
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn grid_accelerated_grouping_matches_brute_force_scan() {
        // Padding every point with constant-zero dimensions changes no
        // distance and no oscillator dynamics, but pushes the
        // dimensionality past the cell grid's limit, so the grouping falls
        // back to the brute-force linear scan. The resulting labels must
        // match the grid-accelerated 2-d run point for point.
        let (points, _) = two_blobs();
        let mut padded = PointMatrix::new(5);
        for row in points.rows() {
            padded.push_row(&[row[0], row[1], 0.0, 0.0, 0.0]);
        }
        let config = SyncConfig::new(0.12);
        let accelerated = sync_cluster(points.view(), &config);
        let brute = sync_cluster(padded.view(), &config);
        assert_eq!(accelerated, brute);
    }

    #[test]
    fn single_point_is_noise_under_default_min_size() {
        let single = PointMatrix::from_rows(vec![vec![0.5, 0.5]]).unwrap();
        let clustering = sync_cluster(single.view(), &SyncConfig::default());
        assert_eq!(clustering.noise_count(), 1);
        assert_eq!(clustering.cluster_count(), 0);
    }
}
