//! The common result type returned by every clustering algorithm.
//!
//! Since the unified-API redesign this is the canonical
//! [`adawave_api::Clustering`], re-exported here so existing imports of
//! `adawave_baselines::Clustering` keep working; `adawave-core` produces
//! the very same type, so core and baseline results compare directly.

pub use adawave_api::Clustering;
