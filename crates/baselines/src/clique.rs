//! CLIQUE — automatic subspace clustering (Agrawal et al., SIGMOD 1998).
//!
//! The second grid-based relative the AdaWave paper cites (§II): CLIQUE
//! partitions every dimension into `xi` intervals, finds *dense units*
//! (cells holding at least a `tau` fraction of the points) bottom-up with an
//! Apriori-style candidate generation — a `k`-dimensional unit can only be
//! dense if all of its `(k-1)`-dimensional projections are — and reports
//! connected dense units in the highest-dimensional subspaces as clusters.
//! Unlike AdaWave it searches subspaces instead of smoothing the full-space
//! grid, which makes it attractive for very high dimensions but blind to
//! clusters that only exist in the full space.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use adawave_api::PointsView;

use crate::Clustering;

/// Configuration for [`clique`].
#[derive(Debug, Clone)]
pub struct CliqueConfig {
    /// Number of intervals per dimension (`xi` in the paper).
    pub intervals: u32,
    /// Density threshold (`tau`): a unit is dense when it holds at least
    /// `tau * n` points.
    pub density_threshold: f64,
    /// Upper bound on the dimensionality of the subspaces searched (caps the
    /// Apriori lattice; 0 means "no bound").
    pub max_subspace_dims: usize,
}

impl Default for CliqueConfig {
    fn default() -> Self {
        Self {
            intervals: 10,
            density_threshold: 0.01,
            max_subspace_dims: 0,
        }
    }
}

impl CliqueConfig {
    /// Create a configuration.
    pub fn new(intervals: u32, density_threshold: f64) -> Self {
        Self {
            intervals,
            density_threshold,
            max_subspace_dims: 0,
        }
    }
}

/// A dense unit: a subspace (sorted list of dimensions) together with one
/// interval index per subspace dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DenseUnit {
    /// The dimensions spanning the subspace, strictly increasing.
    pub dims: Vec<usize>,
    /// The interval index along each subspace dimension.
    pub intervals: Vec<u32>,
}

/// The outcome of the bottom-up dense-unit search.
#[derive(Debug, Clone)]
pub struct CliqueModel {
    /// Dense units grouped by subspace dimensionality (index 0 = 1-D units).
    pub dense_units_by_level: Vec<Vec<DenseUnit>>,
    /// Number of intervals per dimension used for discretization.
    pub intervals: u32,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl CliqueModel {
    /// The highest subspace dimensionality that still has dense units
    /// (0 when no unit is dense at all).
    pub fn max_dense_dimensionality(&self) -> usize {
        self.dense_units_by_level
            .iter()
            .rposition(|units| !units.is_empty())
            .map_or(0, |level| level + 1)
    }

    /// Discretize one coordinate of a point.
    fn interval_of(&self, value: f64, dim: usize) -> u32 {
        let span = (self.upper[dim] - self.lower[dim]).max(1e-300);
        let t = (value - self.lower[dim]) / span;
        ((t * self.intervals as f64) as u32).min(self.intervals - 1)
    }

    /// Whether a point falls inside a dense unit.
    pub fn contains(&self, unit: &DenseUnit, point: &[f64]) -> bool {
        unit.dims
            .iter()
            .zip(unit.intervals.iter())
            .all(|(&d, &i)| self.interval_of(point[d], d) == i)
    }
}

/// Run the bottom-up dense unit search.
pub fn clique_model(points: PointsView<'_>, config: &CliqueConfig) -> CliqueModel {
    let dims = points.dims();
    let mut lower = vec![f64::INFINITY; dims];
    let mut upper = vec![f64::NEG_INFINITY; dims];
    for p in points.rows() {
        for j in 0..dims {
            lower[j] = lower[j].min(p[j]);
            upper[j] = upper[j].max(p[j]);
        }
    }
    for j in 0..dims {
        if !lower[j].is_finite() || upper[j] - lower[j] <= 0.0 {
            lower[j] = lower.get(j).copied().unwrap_or(0.0);
            upper[j] = lower[j] + 1.0;
        }
    }
    let mut model = CliqueModel {
        dense_units_by_level: Vec::new(),
        intervals: config.intervals.max(1),
        lower,
        upper,
    };
    if points.is_empty() || dims == 0 {
        return model;
    }
    let min_count = ((config.density_threshold * points.len() as f64).ceil() as usize).max(1);
    let max_level = if config.max_subspace_dims == 0 {
        dims
    } else {
        config.max_subspace_dims.min(dims)
    };

    // Level 1: count every (dimension, interval) pair.
    let mut counts: BTreeMap<DenseUnit, usize> = BTreeMap::new();
    for p in points.rows() {
        for (d, &x) in p.iter().enumerate() {
            let unit = DenseUnit {
                dims: vec![d],
                intervals: vec![model.interval_of(x, d)],
            };
            *counts.entry(unit).or_insert(0) += 1;
        }
    }
    let mut current: Vec<DenseUnit> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_count)
        .map(|(u, _)| u)
        .collect();
    model.dense_units_by_level.push(current.clone());

    // Levels 2..: Apriori joins of units sharing all but their last dimension.
    for _level in 2..=max_level {
        if current.len() < 2 {
            model.dense_units_by_level.push(Vec::new());
            break;
        }
        let existing: HashSet<&DenseUnit> = current.iter().collect();
        // BTreeSet: the candidate scan below walks this set, and dense-unit
        // lists must come out in Ord order regardless of hash seeds.
        let mut candidates: BTreeSet<DenseUnit> = BTreeSet::new();
        for (i, a) in current.iter().enumerate() {
            for b in &current[i + 1..] {
                let k = a.dims.len();
                if a.dims[..k - 1] != b.dims[..k - 1]
                    || a.intervals[..k - 1] != b.intervals[..k - 1]
                    || a.dims[k - 1] == b.dims[k - 1]
                {
                    continue;
                }
                let (first, second) = if a.dims[k - 1] < b.dims[k - 1] {
                    (a, b)
                } else {
                    (b, a)
                };
                let mut dims = first.dims.clone();
                dims.push(second.dims[k - 1]);
                let mut intervals = first.intervals.clone();
                intervals.push(second.intervals[k - 1]);
                let candidate = DenseUnit { dims, intervals };
                // Apriori pruning: every (k)-subset obtained by dropping one
                // dimension must itself be dense.
                let all_subsets_dense = (0..candidate.dims.len()).all(|drop| {
                    let mut sub_dims = candidate.dims.clone();
                    let mut sub_intervals = candidate.intervals.clone();
                    sub_dims.remove(drop);
                    sub_intervals.remove(drop);
                    existing.contains(&DenseUnit {
                        dims: sub_dims,
                        intervals: sub_intervals,
                    })
                });
                if all_subsets_dense {
                    candidates.insert(candidate);
                }
            }
        }
        if candidates.is_empty() {
            model.dense_units_by_level.push(Vec::new());
            break;
        }
        // Count candidate support with one scan over the points. The
        // candidates come out of the BTreeSet already in Ord order, so the
        // surviving units need no further sort.
        let candidates: Vec<DenseUnit> = candidates.into_iter().collect();
        let mut support = vec![0usize; candidates.len()];
        for p in points.rows() {
            for (unit, count) in candidates.iter().zip(support.iter_mut()) {
                if model.contains(unit, p) {
                    *count += 1;
                }
            }
        }
        let next: Vec<DenseUnit> = candidates
            .into_iter()
            .zip(support)
            .filter(|(_, c)| *c >= min_count)
            .map(|(u, _)| u)
            .collect();
        model.dense_units_by_level.push(next.clone());
        if next.is_empty() {
            break;
        }
        current = next;
    }
    model
}

/// Run CLIQUE and return a flat clustering: connected dense units of the
/// highest dense subspace dimensionality form clusters (per subspace), and
/// points covered by none of them are noise.
pub fn clique(points: PointsView<'_>, config: &CliqueConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    let model = clique_model(points, config);
    let top = model.max_dense_dimensionality();
    if top == 0 {
        return Clustering::all_noise(n);
    }
    let units = &model.dense_units_by_level[top - 1];

    // Group the top-level dense units by subspace, then connect units within
    // a subspace when they differ by one step along exactly one dimension.
    let mut by_subspace: BTreeMap<&[usize], Vec<usize>> = BTreeMap::new();
    for (i, u) in units.iter().enumerate() {
        by_subspace.entry(&u.dims).or_default().push(i);
    }
    let mut unit_cluster: Vec<Option<usize>> = vec![None; units.len()];
    let mut next_cluster = 0usize;
    for members in by_subspace.values() {
        // Union-find over the units of this subspace.
        let mut parent: Vec<usize> = (0..members.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for a_pos in 0..members.len() {
            for b_pos in a_pos + 1..members.len() {
                let (a, b) = (&units[members[a_pos]], &units[members[b_pos]]);
                let mut diff = 0u32;
                let mut adjacent = true;
                for (ia, ib) in a.intervals.iter().zip(b.intervals.iter()) {
                    let step = ia.abs_diff(*ib);
                    if step > 1 {
                        adjacent = false;
                        break;
                    }
                    diff += step;
                }
                if adjacent && diff == 1 {
                    let (ra, rb) = (find(&mut parent, a_pos), find(&mut parent, b_pos));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        let mut root_to_cluster: HashMap<usize, usize> = HashMap::new();
        for (pos, &unit_idx) in members.iter().enumerate() {
            let root = find(&mut parent, pos);
            let cluster = *root_to_cluster.entry(root).or_insert_with(|| {
                let c = next_cluster;
                next_cluster += 1;
                c
            });
            unit_cluster[unit_idx] = Some(cluster);
        }
    }

    // Assign every point to the cluster of the first top-level unit covering
    // it (points covered by no dense unit are noise).
    let assignment: Vec<Option<usize>> = points
        .rows()
        .map(|p| {
            units
                .iter()
                .position(|u| model.contains(u, p))
                .and_then(|i| unit_cluster[i])
        })
        .collect();
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

    fn blobs_with_noise() -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(17);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.2, 0.2], &[0.03, 0.03], 300);
        truth.extend(std::iter::repeat_n(0usize, 300));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.8, 0.8], &[0.03, 0.03], 300);
        truth.extend(std::iter::repeat_n(1usize, 300));
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 150);
        truth.extend(std::iter::repeat_n(2usize, 150));
        (points, truth)
    }

    #[test]
    fn clusters_two_blobs_in_noise() {
        let (points, truth) = blobs_with_noise();
        let clustering = clique(points.view(), &CliqueConfig::new(12, 0.02));
        assert!(clustering.cluster_count() >= 2);
        let score = ami_ignoring_noise(&truth, &clustering.to_labels(NOISE_LABEL), 2);
        assert!(score > 0.6, "AMI {score}");
    }

    #[test]
    fn dense_units_respect_the_apriori_property() {
        let (points, _) = blobs_with_noise();
        let model = clique_model(points.view(), &CliqueConfig::new(12, 0.02));
        assert!(model.max_dense_dimensionality() >= 2);
        // Every 2-D dense unit must have both of its 1-D projections dense.
        let one_d: HashSet<&DenseUnit> = model.dense_units_by_level[0].iter().collect();
        for unit in &model.dense_units_by_level[1] {
            for drop in 0..2 {
                let mut dims = unit.dims.clone();
                let mut intervals = unit.intervals.clone();
                dims.remove(drop);
                intervals.remove(drop);
                assert!(
                    one_d.contains(&DenseUnit { dims, intervals }),
                    "projection of {unit:?} is not dense"
                );
            }
        }
    }

    #[test]
    fn finds_a_subspace_cluster_hidden_in_an_irrelevant_dimension() {
        // A cluster that is tight in dimension 0 but uniform in dimension 1:
        // CLIQUE still reports a dense 1-D unit on dimension 0.
        let mut rng = Rng::new(9);
        let mut points = PointMatrix::new(2);
        for _ in 0..400 {
            points.push_row(&[rng.normal_with(0.5, 0.01), rng.uniform()]);
        }
        // Each dimension is normalized to its own min/max, so the tight
        // normal coordinate still spans all 20 intervals — but its central
        // intervals hold ~13% of the points each, versus ~5% for the uniform
        // dimension. A 10% threshold separates the two.
        let model = clique_model(points.view(), &CliqueConfig::new(20, 0.10));
        let dense_dims: HashSet<usize> = model.dense_units_by_level[0]
            .iter()
            .map(|u| u.dims[0])
            .collect();
        assert!(dense_dims.contains(&0));
        assert!(!dense_dims.contains(&1), "dimension 1 is uniform");
    }

    #[test]
    fn no_dense_units_means_all_noise() {
        let mut rng = Rng::new(13);
        let mut points = PointMatrix::new(2);
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 200);
        // Threshold of 50% of points per unit: nothing qualifies in 2-D.
        let clustering = clique(points.view(), &CliqueConfig::new(10, 0.5));
        assert_eq!(clustering.cluster_count(), 0);
        assert_eq!(clustering.noise_count(), 200);
    }

    #[test]
    fn max_subspace_dims_caps_the_lattice() {
        let (points, _) = blobs_with_noise();
        let config = CliqueConfig {
            intervals: 12,
            density_threshold: 0.02,
            max_subspace_dims: 1,
        };
        let model = clique_model(points.view(), &config);
        assert_eq!(model.max_dense_dimensionality(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(clique(PointMatrix::new(2).view(), &CliqueConfig::default()).is_empty());
    }

    #[test]
    fn adjacent_dense_units_merge_into_one_cluster() {
        // A long uniform bar spanning several intervals along x.
        let mut rng = Rng::new(23);
        let mut points = PointMatrix::new(2);
        for _ in 0..600 {
            points.push_row(&[rng.uniform_range(0.1, 0.9), rng.normal_with(0.5, 0.01)]);
        }
        let clustering = clique(points.view(), &CliqueConfig::new(8, 0.02));
        assert_eq!(
            clustering.cluster_count(),
            1,
            "sizes {:?}",
            clustering.cluster_sizes()
        );
    }
}
