//! k-means (Lloyd's algorithm) with k-means++ seeding and restarts.
//!
//! The paper uses k-means as the representative centroid-based method and
//! always gives it the correct `k`; we reproduce that protocol.
//!
//! All kernels run over the flat row-major [`PointsView`]: points and
//! centroids are contiguous buffers, and subset runs (bisecting splits in
//! DipMeans) recurse over index slices into the shared matrix instead of
//! materializing cloned sub-datasets.

use adawave_api::{PointMatrix, PointsView};
use adawave_data::Rng;
use adawave_linalg::{nearest_row, squared_distance};
use adawave_runtime::Runtime;

use crate::Clustering;

/// Rows per parallel work unit of the Lloyd assignment/accumulation pass.
/// Fixed (never derived from the thread count) so per-chunk partial sums
/// merge in the same order for every [`Runtime`] — the determinism
/// contract that makes `threads=8` labels equal `threads=1` labels.
const ROW_CHUNK: usize = 1_024;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iterations: usize,
    /// Convergence tolerance on the relative change of the objective.
    pub tolerance: f64,
    /// Number of independent k-means++ restarts; the best objective wins.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker pool for the assignment and accumulation kernels. Any thread
    /// count produces identical labels, centroids and inertia.
    pub runtime: Runtime,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iterations: 100,
            tolerance: 1e-6,
            restarts: 4,
            seed: 0,
            runtime: Runtime::from_env(),
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor fixing `k` and the seed.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            seed,
            ..Default::default()
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// The clustering (every point assigned; k-means has no noise notion).
    pub clustering: Clustering,
    /// Final centroids, one row per cluster.
    pub centroids: PointMatrix,
    /// Final within-cluster sum of squared distances (the objective).
    pub inertia: f64,
    /// Iterations used by the winning restart.
    pub iterations: usize,
}

/// A point set addressable by dense local index: either a whole matrix
/// view or a subset of it selected through an index slice. Monomorphized,
/// so the full-dataset path keeps direct row access with no indirection.
/// `Sync` so parallel Lloyd chunks can read rows concurrently.
trait RowSet: Copy + Sync {
    fn len(&self) -> usize;
    fn dims(&self) -> usize;
    fn row(&self, i: usize) -> &[f64];
}

impl RowSet for PointsView<'_> {
    #[inline]
    fn len(&self) -> usize {
        PointsView::len(self)
    }
    #[inline]
    fn dims(&self) -> usize {
        PointsView::dims(self)
    }
    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        PointsView::row(self, i)
    }
}

/// A subset of a shared matrix selected by global indices — the zero-copy
/// replacement for the old `Vec<Vec<f64>>` subset materialization.
#[derive(Clone, Copy)]
struct IndexedRows<'a> {
    points: PointsView<'a>,
    members: &'a [usize],
}

impl RowSet for IndexedRows<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.members.len()
    }
    #[inline]
    fn dims(&self) -> usize {
        self.points.dims()
    }
    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        self.points.row(self.members[i])
    }
}

/// k-means++ initialization: the first centroid is uniform, each subsequent
/// one is sampled proportionally to the squared distance to the nearest
/// already-chosen centroid. Centroids are a flat `k x dims` buffer. The
/// nearest-centroid distance table updates fan out over `runtime`; each
/// entry is independent, so any thread count produces the same table.
fn kmeanspp_init<R: RowSet>(points: R, k: usize, rng: &mut Rng, runtime: Runtime) -> Vec<f64> {
    let n = points.len();
    let dims = points.dims();
    let mut centroids: Vec<f64> = Vec::with_capacity(k * dims);
    centroids.extend_from_slice(points.row(rng.below(n)));
    let mut dist_sq: Vec<f64> =
        runtime.par_map_indexed(n, |i| squared_distance(points.row(i), &centroids[..dims]));
    while centroids.len() < k * dims {
        let total: f64 = dist_sq.iter().sum();
        let choice = if total <= 0.0 {
            rng.below(n)
        } else {
            let mut target = rng.uniform() * total;
            let mut chosen = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.extend_from_slice(points.row(choice));
        let last = &centroids[centroids.len() - dims..];
        runtime.par_chunks_mut(&mut dist_sq, ROW_CHUNK, |chunk_idx, chunk| {
            let base = chunk_idx * ROW_CHUNK;
            for (local, d) in chunk.iter_mut().enumerate() {
                let nd = squared_distance(points.row(base + local), last);
                if nd < *d {
                    *d = nd;
                }
            }
        });
    }
    centroids
}

fn lloyd<R: RowSet>(
    points: R,
    mut centroids: Vec<f64>,
    config: &KMeansConfig,
) -> (Vec<usize>, Vec<f64>, f64, usize) {
    let n = points.len();
    let dims = points.dims();
    let k = centroids.len() / dims;
    let mut assignment = vec![0usize; n];
    let mut prev_inertia = f64::MAX;
    let mut iterations = 0;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Fused assignment + accumulation, fanned out over fixed row
        // chunks: every chunk assigns its rows (each row's argmin is
        // independent of chunking) and accumulates local centroid sums,
        // counts and inertia. Partials merge in chunk order, so the
        // result is identical for every thread count.
        let partials: Vec<(Vec<f64>, Vec<usize>, f64)> =
            config
                .runtime
                .par_chunks_mut(&mut assignment, ROW_CHUNK, |chunk_idx, slots| {
                    let base = chunk_idx * ROW_CHUNK;
                    let mut sums = vec![0.0; k * dims];
                    let mut counts = vec![0usize; k];
                    let mut local_inertia = 0.0;
                    for (local, slot) in slots.iter_mut().enumerate() {
                        let p = points.row(base + local);
                        // Fused min+argmin kernel: first index wins, sqrt
                        // deferred (bit-identical to the scalar loop).
                        let (best, best_d) =
                            nearest_row(p, &centroids, dims).expect("k >= 1 centroids");
                        *slot = best;
                        local_inertia += best_d;
                        for (s, v) in sums[best * dims..(best + 1) * dims]
                            .iter_mut()
                            .zip(p.iter())
                        {
                            *s += v;
                        }
                        counts[best] += 1;
                    }
                    (sums, counts, local_inertia)
                });
        let mut inertia = 0.0;
        let mut sums = vec![0.0; k * dims];
        let mut counts = vec![0usize; k];
        for (chunk_sums, chunk_counts, chunk_inertia) in partials {
            for (s, v) in sums.iter_mut().zip(chunk_sums) {
                *s += v;
            }
            for (c, v) in counts.iter_mut().zip(chunk_counts) {
                *c += v;
            }
            inertia += chunk_inertia;
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for (dst, s) in centroids[c * dims..(c + 1) * dims]
                    .iter_mut()
                    .zip(sums[c * dims..(c + 1) * dims].iter())
                {
                    *dst = s * inv;
                }
            }
            // Empty clusters keep their previous centroid.
        }
        // Convergence check.
        if prev_inertia.is_finite() {
            let rel = (prev_inertia - inertia).abs() / prev_inertia.max(1e-12);
            if rel < config.tolerance {
                break;
            }
        }
        prev_inertia = inertia;
    }
    // Final assignment-only pass: inside the loop, labels are computed
    // against the centroids *before* their update, so without this pass the
    // returned labels could disagree with the returned centroids on
    // boundary points. Re-assigning (and re-measuring inertia) against the
    // final centroids makes `label(i) == argmin_c d(point_i, centroid_c)`
    // an invariant — which is exactly what nearest-centroid prediction
    // (`CentroidModel`) relies on to reproduce the fit labels.
    let partials: Vec<f64> =
        config
            .runtime
            .par_chunks_mut(&mut assignment, ROW_CHUNK, |chunk_idx, slots| {
                let base = chunk_idx * ROW_CHUNK;
                let mut local_inertia = 0.0;
                for (local, slot) in slots.iter_mut().enumerate() {
                    let p = points.row(base + local);
                    let (best, best_d) =
                        nearest_row(p, &centroids, dims).expect("k >= 1 centroids");
                    *slot = best;
                    local_inertia += best_d;
                }
                local_inertia
            });
    let inertia = partials.into_iter().sum();
    (assignment, centroids, inertia, iterations)
}

fn kmeans_impl<R: RowSet>(points: R, config: &KMeansConfig) -> KMeansResult {
    assert!(points.len() > 0, "kmeans: empty input");
    assert!(config.k >= 1, "kmeans: k must be >= 1");
    let dims = points.dims();
    if dims == 0 {
        // Zero-dimensional points are all identical: one cluster, zero
        // inertia (the uniform `Clusterer` surface rejects this input
        // before it gets here; direct calls get the degenerate answer).
        let mut centroids = PointMatrix::new(0);
        centroids.push_row(&[]);
        return KMeansResult {
            clustering: Clustering::from_labels(vec![0; points.len()]),
            centroids,
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = config.k.min(points.len());
    let mut rng = Rng::new(config.seed);
    let mut best: Option<KMeansResult> = None;
    for _ in 0..config.restarts.max(1) {
        let init = kmeanspp_init(points, k, &mut rng, config.runtime);
        let (assignment, centroids, inertia, iterations) = lloyd(points, init, config);
        let better = match &best {
            None => true,
            Some(b) => inertia < b.inertia,
        };
        if better {
            best = Some(KMeansResult {
                clustering: Clustering::from_labels(assignment),
                centroids: PointMatrix::from_flat(centroids, dims)
                    .expect("centroid buffer is k x dims by construction"),
                inertia,
                iterations,
            });
        }
    }
    best.unwrap()
}

/// Run k-means with k-means++ seeding and `config.restarts` restarts,
/// returning the solution with the lowest inertia.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`. (Behind the uniform
/// [`Clusterer`](adawave_api::Clusterer) interface, empty input surfaces
/// as `ClusterError::InvalidInput` instead.)
pub fn kmeans(points: PointsView<'_>, config: &KMeansConfig) -> KMeansResult {
    kmeans_impl(points, config)
}

/// Run k-means on the subset of `points` selected by `members`, without
/// materializing the subset: the Lloyd kernels address rows through the
/// index slice into the shared matrix. The returned clustering is indexed
/// by position in `members`.
///
/// # Panics
/// Panics if `members` is empty, `k == 0`, or an index is out of bounds.
pub fn kmeans_on_subset(
    points: PointsView<'_>,
    members: &[usize],
    config: &KMeansConfig,
) -> KMeansResult {
    kmeans_impl(IndexedRows { points, members }, config)
}

/// Run 2-means on a subset of points (used by DipMeans bisecting splits),
/// recursing over the index slice into the shared matrix — no per-split
/// subset clone.
pub(crate) fn two_means_split(
    points: PointsView<'_>,
    members: &[usize],
    seed: u64,
    runtime: Runtime,
) -> (Vec<usize>, Vec<usize>) {
    if members.len() < 2 {
        return (members.to_vec(), Vec::new());
    }
    let config = KMeansConfig {
        runtime,
        ..KMeansConfig::new(2, seed)
    };
    let result = kmeans_on_subset(points, members, &config);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (local, &global) in members.iter().enumerate() {
        match result.clustering.label(local) {
            Some(0) => a.push(global),
            _ => b.push(global),
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_data::shapes;
    use adawave_metrics::ami;

    fn three_blobs(seed: u64) -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        for (c, center) in [[0.0, 0.0], [5.0, 5.0], [0.0, 6.0]].iter().enumerate() {
            shapes::gaussian_blob(&mut points, &mut rng, center, &[0.3, 0.3], 100);
            labels.extend(std::iter::repeat_n(c, 100));
        }
        (points, labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (points, labels) = three_blobs(1);
        let result = kmeans(points.view(), &KMeansConfig::new(3, 7));
        assert_eq!(result.clustering.cluster_count(), 3);
        let score = ami(&labels, &result.clustering.to_labels(usize::MAX));
        assert!(score > 0.95, "AMI {score}");
        assert_eq!(result.clustering.noise_count(), 0);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (points, _) = three_blobs(2);
        let i1 = kmeans(points.view(), &KMeansConfig::new(1, 3)).inertia;
        let i3 = kmeans(points.view(), &KMeansConfig::new(3, 3)).inertia;
        let i6 = kmeans(points.view(), &KMeansConfig::new(6, 3)).inertia;
        assert!(i3 < i1);
        assert!(i6 <= i3 + 1e-9);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let points = PointMatrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 2.0],
            vec![2.0, 2.0],
        ])
        .unwrap();
        let result = kmeans(points.view(), &KMeansConfig::new(1, 5));
        assert_eq!(result.centroids.len(), 1);
        assert!((result.centroids[0][0] - 1.0).abs() < 1e-9);
        assert!((result.centroids[0][1] - 1.0).abs() < 1e-9);
        assert!((result.inertia - 8.0).abs() < 1e-9);
    }

    #[test]
    fn labels_always_match_the_nearest_final_centroid() {
        // The invariant nearest-centroid prediction relies on: every
        // returned label is the argmin over the *returned* centroids
        // (first index wins ties), and the reported inertia is measured
        // against them too.
        let (points, _) = three_blobs(8);
        let result = kmeans(points.view(), &KMeansConfig::new(3, 5));
        let dims = points.dims();
        let mut expected_inertia = 0.0;
        let mut nearest = Vec::with_capacity(points.len());
        for p in points.rows() {
            let mut best = 0usize;
            let mut best_d = f64::MAX;
            for (c, centroid) in result.centroids.as_slice().chunks_exact(dims).enumerate() {
                let d = squared_distance(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            expected_inertia += best_d;
            nearest.push(best);
        }
        // Compacted, the nearest-centroid sequence IS the fit clustering.
        assert_eq!(Clustering::from_labels(nearest), result.clustering);
        assert!((result.inertia - expected_inertia).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (points, _) = three_blobs(3);
        let a = kmeans(points.view(), &KMeansConfig::new(3, 11));
        let b = kmeans(points.view(), &KMeansConfig::new(3, 11));
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let points = PointMatrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let result = kmeans(points.view(), &KMeansConfig::new(10, 1));
        assert!(result.clustering.cluster_count() <= 3);
    }

    #[test]
    fn parallel_kmeans_matches_sequential_exactly() {
        // Enough rows to cross several ROW_CHUNK boundaries so the fixed
        // chunk merge is actually exercised across thread counts.
        let mut rng = Rng::new(23);
        let mut points = PointMatrix::new(2);
        for center in [[0.0, 0.0], [4.0, 4.0], [0.0, 7.0], [7.0, 0.0]] {
            shapes::gaussian_blob(&mut points, &mut rng, &center, &[0.4, 0.4], 800);
        }
        let sequential = kmeans(
            points.view(),
            &KMeansConfig {
                runtime: Runtime::sequential(),
                ..KMeansConfig::new(4, 3)
            },
        );
        for threads in [2, 3, 8] {
            let parallel = kmeans(
                points.view(),
                &KMeansConfig {
                    runtime: Runtime::with_threads(threads),
                    ..KMeansConfig::new(4, 3)
                },
            );
            assert_eq!(sequential.clustering, parallel.clustering, "{threads}");
            assert_eq!(sequential.centroids, parallel.centroids, "{threads}");
            assert_eq!(
                sequential.inertia.to_bits(),
                parallel.inertia.to_bits(),
                "{threads}"
            );
            assert_eq!(sequential.iterations, parallel.iterations, "{threads}");
        }
    }

    #[test]
    fn two_means_split_partitions_members() {
        let (points, _) = three_blobs(4);
        let members: Vec<usize> = (0..200).collect(); // blobs 0 and 1
        let (a, b) = two_means_split(points.view(), &members, 9, Runtime::sequential());
        assert_eq!(a.len() + b.len(), 200);
        assert!(!a.is_empty() && !b.is_empty());
        // The split should roughly separate the two blobs.
        let a_in_first = a.iter().filter(|&&i| i < 100).count();
        let frac = a_in_first as f64 / a.len() as f64;
        assert!(!(0.05..=0.95).contains(&frac));
    }

    #[test]
    fn subset_run_matches_full_run_on_the_same_rows() {
        // Index-slice subset addressing must be equivalent to gathering the
        // rows into a fresh matrix — same labels, same inertia.
        let (points, _) = three_blobs(6);
        let members: Vec<usize> = (0..points.len()).step_by(3).collect();
        let via_subset = kmeans_on_subset(points.view(), &members, &KMeansConfig::new(2, 13));
        let gathered = points.select(&members);
        let via_gather = kmeans(gathered.view(), &KMeansConfig::new(2, 13));
        assert_eq!(via_subset.clustering, via_gather.clustering);
        assert_eq!(via_subset.inertia, via_gather.inertia);
        assert_eq!(via_subset.centroids, via_gather.centroids);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        let empty = PointMatrix::new(2);
        kmeans(empty.view(), &KMeansConfig::new(2, 1));
    }

    #[test]
    fn zero_dimensional_points_collapse_into_one_cluster() {
        // Direct calls on 0-dim points (the registry surface rejects them
        // earlier) get the degenerate answer, not a divide-by-zero panic.
        let points = PointMatrix::from_rows(vec![vec![], vec![], vec![]]).unwrap();
        let result = kmeans(points.view(), &KMeansConfig::new(2, 1));
        assert_eq!(result.clustering.cluster_count(), 1);
        assert_eq!(result.clustering.len(), 3);
        assert_eq!(result.inertia, 0.0);
        assert_eq!(result.centroids.len(), 1);
    }
}
