//! k-means (Lloyd's algorithm) with k-means++ seeding and restarts.
//!
//! The paper uses k-means as the representative centroid-based method and
//! always gives it the correct `k`; we reproduce that protocol.

use adawave_data::Rng;
use adawave_linalg::squared_distance;

use crate::Clustering;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iterations: usize,
    /// Convergence tolerance on the relative change of the objective.
    pub tolerance: f64,
    /// Number of independent k-means++ restarts; the best objective wins.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iterations: 100,
            tolerance: 1e-6,
            restarts: 4,
            seed: 0,
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor fixing `k` and the seed.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            seed,
            ..Default::default()
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// The clustering (every point assigned; k-means has no noise notion).
    pub clustering: Clustering,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances (the objective).
    pub inertia: f64,
    /// Iterations used by the winning restart.
    pub iterations: usize,
}

/// k-means++ initialization: the first centroid is uniform, each subsequent
/// one is sampled proportionally to the squared distance to the nearest
/// already-chosen centroid.
fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.below(n)].clone());
    let mut dist_sq: Vec<f64> = points
        .iter()
        .map(|p| squared_distance(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let choice = if total <= 0.0 {
            rng.below(n)
        } else {
            let mut target = rng.uniform() * total;
            let mut chosen = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[choice].clone());
        let last = centroids.last().unwrap();
        for (d, p) in dist_sq.iter_mut().zip(points.iter()) {
            let nd = squared_distance(p, last);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

fn lloyd(
    points: &[Vec<f64>],
    mut centroids: Vec<Vec<f64>>,
    config: &KMeansConfig,
) -> (Vec<usize>, Vec<Vec<f64>>, f64, usize) {
    let n = points.len();
    let dims = points[0].len();
    let k = centroids.len();
    let mut assignment = vec![0usize; n];
    let mut prev_inertia = f64::MAX;
    let mut inertia = f64::MAX;
    let mut iterations = 0;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Assignment step.
        inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::MAX;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = squared_distance(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[i] = best;
            inertia += best_d;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(assignment.iter()) {
            for (s, v) in sums[a].iter_mut().zip(p.iter()) {
                *s += v;
            }
            counts[a] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
            // Empty clusters keep their previous centroid.
        }
        // Convergence check.
        if prev_inertia.is_finite() {
            let rel = (prev_inertia - inertia).abs() / prev_inertia.max(1e-12);
            if rel < config.tolerance {
                break;
            }
        }
        prev_inertia = inertia;
    }
    (assignment, centroids, inertia, iterations)
}

/// Run k-means with k-means++ seeding and `config.restarts` restarts,
/// returning the solution with the lowest inertia.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans: empty input");
    assert!(config.k >= 1, "kmeans: k must be >= 1");
    let k = config.k.min(points.len());
    let mut rng = Rng::new(config.seed);
    let mut best: Option<KMeansResult> = None;
    for _ in 0..config.restarts.max(1) {
        let init = kmeanspp_init(points, k, &mut rng);
        let (assignment, centroids, inertia, iterations) = lloyd(points, init, config);
        let candidate = KMeansResult {
            clustering: Clustering::from_labels(assignment),
            centroids,
            inertia,
            iterations,
        };
        let better = match &best {
            None => true,
            Some(b) => candidate.inertia < b.inertia,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.unwrap()
}

/// Run 2-means on a subset of points (used by DipMeans cluster splitting).
pub(crate) fn two_means_split(
    points: &[Vec<f64>],
    members: &[usize],
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let subset: Vec<Vec<f64>> = members.iter().map(|&i| points[i].clone()).collect();
    if subset.len() < 2 {
        return (members.to_vec(), Vec::new());
    }
    let result = kmeans(&subset, &KMeansConfig::new(2, seed));
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (local, &global) in members.iter().enumerate() {
        match result.clustering.label(local) {
            Some(0) => a.push(global),
            _ => b.push(global),
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_data::shapes;
    use adawave_metrics::ami;

    fn three_blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in [[0.0, 0.0], [5.0, 5.0], [0.0, 6.0]].iter().enumerate() {
            shapes::gaussian_blob(&mut points, &mut rng, center, &[0.3, 0.3], 100);
            labels.extend(std::iter::repeat_n(c, 100));
        }
        (points, labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (points, labels) = three_blobs(1);
        let result = kmeans(&points, &KMeansConfig::new(3, 7));
        assert_eq!(result.clustering.cluster_count(), 3);
        let score = ami(&labels, &result.clustering.to_labels(usize::MAX));
        assert!(score > 0.95, "AMI {score}");
        assert_eq!(result.clustering.noise_count(), 0);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (points, _) = three_blobs(2);
        let i1 = kmeans(&points, &KMeansConfig::new(1, 3)).inertia;
        let i3 = kmeans(&points, &KMeansConfig::new(3, 3)).inertia;
        let i6 = kmeans(&points, &KMeansConfig::new(6, 3)).inertia;
        assert!(i3 < i1);
        assert!(i6 <= i3 + 1e-9);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let points = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 2.0],
            vec![2.0, 2.0],
        ];
        let result = kmeans(&points, &KMeansConfig::new(1, 5));
        assert_eq!(result.centroids.len(), 1);
        assert!((result.centroids[0][0] - 1.0).abs() < 1e-9);
        assert!((result.centroids[0][1] - 1.0).abs() < 1e-9);
        assert!((result.inertia - 8.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (points, _) = three_blobs(3);
        let a = kmeans(&points, &KMeansConfig::new(3, 11));
        let b = kmeans(&points, &KMeansConfig::new(3, 11));
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let result = kmeans(&points, &KMeansConfig::new(10, 1));
        assert!(result.clustering.cluster_count() <= 3);
    }

    #[test]
    fn two_means_split_partitions_members() {
        let (points, _) = three_blobs(4);
        let members: Vec<usize> = (0..200).collect(); // blobs 0 and 1
        let (a, b) = two_means_split(&points, &members, 9);
        assert_eq!(a.len() + b.len(), 200);
        assert!(!a.is_empty() && !b.is_empty());
        // The split should roughly separate the two blobs.
        let a_in_first = a.iter().filter(|&&i| i < 100).count();
        let frac = a_in_first as f64 / a.len() as f64;
        assert!(!(0.05..=0.95).contains(&frac));
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        kmeans(&[], &KMeansConfig::new(2, 1));
    }
}
