//! RIC — Robust Information-theoretic Clustering (Böhm et al., KDD 2006),
//! in the simplified form described in DESIGN.md.
//!
//! RIC purifies an initial coarse clustering using the minimum description
//! length principle: points that are cheaper to encode under a background
//! (noise) model than under their cluster's model are moved to noise, and
//! clusters are merged greedily whenever the merge reduces the total coding
//! cost. Under heavy noise this tends to collapse the clustering — the
//! qualitative behaviour the paper reports (RIC finds a single cluster /
//! AMI ≈ 0 on very noisy data).

use adawave_api::PointsView;
use adawave_runtime::Runtime;

use crate::kmeans::{kmeans, KMeansConfig};
use crate::Clustering;

/// Configuration for [`ric`].
#[derive(Debug, Clone)]
pub struct RicConfig {
    /// Number of clusters of the initial k-means partition.
    pub initial_k: usize,
    /// Maximum number of merge rounds.
    pub max_merge_rounds: usize,
    /// RNG seed for the initial k-means.
    pub seed: u64,
    /// Worker pool forwarded to the initial k-means (the MDL purification
    /// itself is sequential).
    pub runtime: Runtime,
}

impl Default for RicConfig {
    fn default() -> Self {
        Self {
            initial_k: 8,
            max_merge_rounds: 16,
            seed: 0,
            runtime: Runtime::from_env(),
        }
    }
}

impl RicConfig {
    /// Convenience constructor fixing the initial `k` and seed.
    pub fn new(initial_k: usize, seed: u64) -> Self {
        Self {
            initial_k,
            seed,
            ..Default::default()
        }
    }
}

/// Per-dimension Gaussian coding model of a cluster.
#[derive(Debug, Clone)]
struct ClusterModel {
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl ClusterModel {
    fn fit(points: PointsView<'_>, members: &[usize], dims: usize) -> Self {
        let n = members.len().max(1) as f64;
        let mut means = vec![0.0; dims];
        for &i in members {
            for (m, v) in means.iter_mut().zip(points.row(i).iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dims];
        for &i in members {
            for (j, v) in points.row(i).iter().enumerate() {
                vars[j] += (v - means[j]).powi(2);
            }
        }
        let std_devs = vars.iter().map(|&v| (v / n).sqrt().max(1e-6)).collect();
        Self { means, std_devs }
    }

    /// Negative log-likelihood (coding cost in nats) of a point.
    fn coding_cost(&self, point: &[f64]) -> f64 {
        point
            .iter()
            .zip(self.means.iter().zip(self.std_devs.iter()))
            .map(|(&x, (&m, &s))| {
                let z = (x - m) / s;
                0.5 * z * z + s.ln() + 0.5 * (2.0 * std::f64::consts::PI).ln()
            })
            .sum()
    }

    /// Model description cost: two parameters per dimension at log2(n)/2
    /// nats each (the usual MDL parameter cost).
    fn model_cost(&self, n: usize) -> f64 {
        (2 * self.means.len()) as f64 * 0.5 * (n.max(2) as f64).ln()
    }
}

/// Coding cost of a point under the uniform background (noise) model over
/// the dataset's bounding box.
fn noise_cost(volume_log: f64) -> f64 {
    volume_log
}

fn total_cost(
    points: PointsView<'_>,
    clusters: &[Vec<usize>],
    models: &[ClusterModel],
    noise: &[usize],
    volume_log: f64,
) -> f64 {
    let n = points.len();
    let mut cost = 0.0;
    for (members, model) in clusters.iter().zip(models.iter()) {
        if members.is_empty() {
            continue;
        }
        cost += model.model_cost(n);
        for &i in members {
            cost += model.coding_cost(points.row(i));
        }
    }
    cost += noise.len() as f64 * noise_cost(volume_log);
    cost
}

/// Run the simplified RIC.
pub fn ric(points: PointsView<'_>, config: &RicConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    let dims = points.dims();

    // Log-volume of the bounding box, for the uniform noise coding cost.
    let mut volume_log = 0.0;
    for j in 0..dims {
        let lo = points.rows().map(|p| p[j]).fold(f64::MAX, f64::min);
        let hi = points.rows().map(|p| p[j]).fold(f64::MIN, f64::max);
        volume_log += (hi - lo).max(1e-6).ln();
    }

    // Initial coarse partition.
    let init = kmeans(
        points,
        &KMeansConfig {
            runtime: config.runtime,
            ..KMeansConfig::new(config.initial_k.max(1), config.seed)
        },
    );
    let mut clusters: Vec<Vec<usize>> = init.clustering.clusters();

    // Purification: move points to noise when the background model encodes
    // them more cheaply than their cluster's Gaussian.
    let mut noise: Vec<usize> = Vec::new();
    let models: Vec<ClusterModel> = clusters
        .iter()
        .map(|members| ClusterModel::fit(points, members, dims))
        .collect();
    for (c, members) in clusters.iter_mut().enumerate() {
        let model = &models[c];
        let mut kept = Vec::with_capacity(members.len());
        for &i in members.iter() {
            if model.coding_cost(points.row(i)) <= noise_cost(volume_log) {
                kept.push(i);
            } else {
                noise.push(i);
            }
        }
        *members = kept;
    }
    clusters.retain(|m| !m.is_empty());

    // Greedy merging while it reduces the MDL cost.
    for _ in 0..config.max_merge_rounds {
        if clusters.len() < 2 {
            break;
        }
        let models: Vec<ClusterModel> = clusters
            .iter()
            .map(|members| ClusterModel::fit(points, members, dims))
            .collect();
        let current = total_cost(points, &clusters, &models, &noise, volume_log);
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let mut merged = clusters[a].clone();
                merged.extend_from_slice(&clusters[b]);
                let merged_model = ClusterModel::fit(points, &merged, dims);
                let mut trial_clusters: Vec<Vec<usize>> = clusters
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != a && i != b)
                    .map(|(_, m)| m.clone())
                    .collect();
                trial_clusters.push(merged);
                let mut trial_models: Vec<ClusterModel> = models
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != a && i != b)
                    .map(|(_, m)| m.clone())
                    .collect();
                trial_models.push(merged_model);
                let cost = total_cost(points, &trial_clusters, &trial_models, &noise, volume_log);
                if cost < current {
                    let better = match best {
                        None => true,
                        Some((_, _, c)) => cost < c,
                    };
                    if better {
                        best = Some((a, b, cost));
                    }
                }
            }
        }
        let Some((a, b, _)) = best else { break };
        let merged: Vec<usize> = clusters[a]
            .iter()
            .chain(clusters[b].iter())
            .copied()
            .collect();
        let mut next: Vec<Vec<usize>> = clusters
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != a && i != b)
            .map(|(_, m)| m.clone())
            .collect();
        next.push(merged);
        clusters = next;
    }

    let mut assignment: Vec<Option<usize>> = vec![None; n];
    for (c, members) in clusters.iter().enumerate() {
        for &i in members {
            assignment[i] = Some(c);
        }
    }
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami, ami_ignoring_noise, NOISE_LABEL};

    #[test]
    fn clean_blobs_are_recovered() {
        let mut rng = Rng::new(1);
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        for (c, center) in [[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]].iter().enumerate() {
            shapes::gaussian_blob(&mut points, &mut rng, center, &[0.3, 0.3], 150);
            labels.extend(std::iter::repeat_n(c, 150));
        }
        let clustering = ric(points.view(), &RicConfig::new(6, 3));
        let score = ami(&labels, &clustering.to_labels(NOISE_LABEL));
        assert!(score > 0.7, "AMI {score}");
        assert!(clustering.cluster_count() <= 6);
        assert!(clustering.cluster_count() >= 3);
    }

    #[test]
    fn heavy_noise_splits_the_data_between_clusters_and_noise() {
        // With 80% uniform noise, purification must push a sizeable share of
        // points to noise while keeping no more clusters than it started with.
        // (The paper reports the original RIC collapsing to ~1 cluster; our
        // simplified MDL purification keeps the clusters but the overall AMI
        // against ground truth including noise stays mediocre, which is the
        // behaviour compared in the Fig. 8 harness.)
        let mut rng = Rng::new(2);
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.3, 0.3], &[0.02, 0.02], 200);
        labels.extend(std::iter::repeat_n(0usize, 200));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.7, 0.7], &[0.02, 0.02], 200);
        labels.extend(std::iter::repeat_n(1usize, 200));
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 1600);
        labels.extend(std::iter::repeat_n(2usize, 1600));
        let clustering = ric(points.view(), &RicConfig::new(8, 3));
        assert!(clustering.cluster_count() >= 1);
        assert!(clustering.cluster_count() <= 8);
        // Most of the uniform noise stays inside the fitted clusters (the
        // per-cluster Gaussians absorb it), so the unmasked AMI — noise as
        // its own ground-truth class — stays well below what AdaWave reaches
        // on the same kind of data.
        let score = ami(&labels, &clustering.to_labels(NOISE_LABEL));
        assert!(score < 0.9, "unmasked AMI unexpectedly high: {score}");
        let _ = ami_ignoring_noise(&labels, &clustering.to_labels(NOISE_LABEL), 2);
    }

    #[test]
    fn merging_never_increases_cluster_count() {
        let mut rng = Rng::new(3);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 600);
        for k in [2, 4, 6] {
            let clustering = ric(points.view(), &RicConfig::new(k, 5));
            assert!(
                clustering.cluster_count() <= k,
                "k={k}: got {} clusters",
                clustering.cluster_count()
            );
        }
    }

    #[test]
    fn deterministic_and_handles_empty() {
        assert!(ric(PointMatrix::new(2).view(), &RicConfig::default()).is_empty());
        let mut rng = Rng::new(4);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.5, 0.5], 100);
        assert_eq!(
            ric(points.view(), &RicConfig::new(3, 7)),
            ric(points.view(), &RicConfig::new(3, 7))
        );
    }
}
