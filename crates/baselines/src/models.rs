//! Trained serving models for the baselines: the native decision rules
//! (nearest centroid, mixture posterior, mode seeking, modal intervals)
//! and the honest nearest-training-point fallback for algorithms with no
//! natural out-of-sample rule.
//!
//! Every model upholds the prediction contract of [`adawave_api::Model`]:
//! predicting on the training batch reproduces the fit labels exactly,
//! `predict_one` uses the training clustering's own cluster ids, and
//! unanswerable points (non-finite, wrong dimensionality) are noise.

use adawave_api::{
    compact_remap, f64_to_hex, validate_predict_input, ClusterError, Model, PayloadReader,
    PointMatrix, PointsView,
};
use adawave_linalg::{squared_distance, Matrix};

use crate::em::GaussianMixture;
use crate::meanshift::{MeanShiftConfig, MeanShiftKernel, ModeSeeker};
use crate::{Clustering, KdIndex};

/// Append a point matrix as bare rows of hex-encoded floats — the row
/// format every persistable baseline model shares.
fn write_matrix(out: &mut String, matrix: &PointMatrix) {
    for row in matrix.rows() {
        let hex: Vec<String> = row.iter().map(|&v| f64_to_hex(v)).collect();
        out.push_str(&hex.join(" "));
        out.push('\n');
    }
}

/// Read `rows` bare hex-float rows of `dims` values back into a matrix.
fn read_matrix(
    reader: &mut PayloadReader<'_>,
    rows: usize,
    dims: usize,
) -> Result<PointMatrix, String> {
    let mut flat = Vec::with_capacity(rows * dims);
    for _ in 0..rows {
        flat.extend(reader.float_row(dims)?);
    }
    PointMatrix::from_flat(flat, dims).map_err(|e| format!("bad matrix: {e}"))
}

/// Render optional per-item cluster labels as one space-separated field
/// value (`-` = noise), the inverse of [`parse_labels`].
fn join_labels(labels: &[Option<usize>]) -> String {
    labels
        .iter()
        .map(|l| match l {
            Some(c) => c.to_string(),
            None => "-".to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Render floats as one space-separated line value of bit-exact hex.
fn join_hex(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| f64_to_hex(v))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Render integers as one space-separated line value.
fn join_usize(values: &[usize]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parse a [`join_labels`] field value back (`-` = noise).
fn parse_labels(raw: &str, expected: usize) -> Result<Vec<Option<usize>>, String> {
    let labels: Vec<Option<usize>> = raw
        .split_whitespace()
        .map(|v| {
            if v == "-" {
                Ok(None)
            } else {
                v.parse().map(Some).map_err(|_| format!("bad label '{v}'"))
            }
        })
        .collect::<Result<_, _>>()?;
    if labels.len() != expected {
        return Err(format!("{} labels, expected {expected}", labels.len()));
    }
    Ok(labels)
}

/// Index of the row of `centroids` nearest to `point` (first index wins
/// ties — the same rule the Lloyd assignment pass uses).
fn nearest_row(point: &[f64], centroids: &PointMatrix) -> Option<usize> {
    let mut best = None;
    let mut best_d = f64::MAX;
    for (c, centroid) in centroids.rows().enumerate() {
        let d = squared_distance(point, centroid);
        if d < best_d {
            best_d = d;
            best = Some(c);
        }
    }
    best
}

/// Nearest-centroid prediction for centroid-based algorithms (k-means,
/// DipMeans). The centroid rows are permuted at construction so row `i`
/// is the centroid of training cluster `i`; because both algorithms label
/// training points by exactly this argmin (k-means guarantees it with its
/// final assignment pass, DipMeans inherits it from its final k-means
/// refinement), predicting the training batch reproduces the fit labels.
#[derive(Debug, Clone)]
pub struct CentroidModel {
    algorithm: String,
    centroids: PointMatrix,
}

impl CentroidModel {
    /// Build a model whose centroid rows are already ordered by cluster id.
    pub fn new(algorithm: impl Into<String>, centroids: PointMatrix) -> Self {
        Self {
            algorithm: algorithm.into(),
            centroids,
        }
    }

    /// Build a model from a fit's centroids and training clustering,
    /// permuting the centroid rows into the clustering's id order (row `i`
    /// = centroid of cluster `i`; centroids of empty clusters follow in
    /// their original order).
    pub fn aligned(
        algorithm: impl Into<String>,
        centroids: &PointMatrix,
        clustering: &Clustering,
        points: PointsView<'_>,
    ) -> Self {
        let k = centroids.len();
        let seen = clustering.cluster_count();
        // For each training cluster id, the centroid row its points argmin
        // to — recovered from the first member of each cluster (labels are
        // nearest-centroid assignments, so one member pins the row).
        let mut row_of_cluster: Vec<Option<usize>> = vec![None; seen];
        let mut resolved = 0usize;
        for (i, a) in clustering.assignment().iter().enumerate() {
            if resolved == seen {
                break;
            }
            if let Some(j) = a {
                if row_of_cluster[*j].is_none() {
                    row_of_cluster[*j] = nearest_row(points.row(i), centroids);
                    resolved += 1;
                }
            }
        }
        let mut ordered = PointMatrix::with_capacity(centroids.dims(), k);
        let mut used = vec![false; k];
        for row in row_of_cluster.into_iter().flatten() {
            ordered.push_row(centroids.row(row));
            used[row] = true;
        }
        for (row, used) in used.iter().enumerate() {
            if !used {
                ordered.push_row(centroids.row(row));
            }
        }
        Self::new(algorithm, ordered)
    }

    /// The centroids, one row per cluster id.
    pub fn centroids(&self) -> &PointMatrix {
        &self.centroids
    }

    /// Reconstruct a model from its [`serialize`](Model::serialize)
    /// payload (header already stripped by the persistence layer).
    pub fn deserialize(algorithm: &str, payload: &str) -> Result<Self, String> {
        let mut reader = PayloadReader::new(payload);
        let dims: usize = reader.scalar("dims")?;
        let k: usize = reader.scalar("centroids")?;
        let centroids = read_matrix(&mut reader, k, dims).map_err(|e| format!("centroids: {e}"))?;
        Ok(Self::new(algorithm, centroids))
    }
}

impl Model for CentroidModel {
    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn dims(&self) -> usize {
        self.centroids.dims()
    }

    fn predict_one(&self, point: &[f64]) -> Option<usize> {
        if point.len() != self.centroids.dims() || !point.iter().all(|v| v.is_finite()) {
            return None;
        }
        nearest_row(point, &self.centroids)
    }

    fn summary(&self) -> String {
        format!(
            "{} model: nearest of {} centroids in {} dimensions; \
             every finite point gets a cluster, non-finite points are noise",
            self.algorithm,
            self.centroids.len(),
            self.centroids.dims(),
        )
    }

    fn serialize(&self) -> Option<String> {
        let mut out = String::new();
        out.push_str(&format!("dims {}\n", self.centroids.dims()));
        out.push_str(&format!("centroids {}\n", self.centroids.len()));
        for row in self.centroids.rows() {
            let hex: Vec<String> = row.iter().map(|&v| f64_to_hex(v)).collect();
            out.push_str(&hex.join(" "));
            out.push('\n');
        }
        Some(out)
    }
}

/// Gaussian-mixture posterior prediction for EM: a point is assigned to
/// its most responsible component — the same rule `em` uses to label the
/// training batch with its final parameters, so training predictions are
/// exact replays. Component ids are remapped to the training clustering.
#[derive(Debug, Clone)]
pub struct EmModel {
    mixture: GaussianMixture,
    remap: Vec<usize>,
}

impl EmModel {
    /// Wrap a fitted mixture, aligning component ids with the training
    /// clustering (components that won no training point get tail ids).
    pub fn aligned(
        mixture: GaussianMixture,
        clustering: &Clustering,
        points: PointsView<'_>,
    ) -> Self {
        let k = mixture.weights.len();
        let seen = clustering.cluster_count();
        // Recover component → cluster-id from one member per cluster (its
        // label is the argmax posterior, replayed here).
        let mut component_of: Vec<Option<usize>> = vec![None; seen];
        let mut resolved = 0usize;
        for (i, a) in clustering.assignment().iter().enumerate() {
            if resolved == seen {
                break;
            }
            if let Some(j) = a {
                if component_of[*j].is_none() {
                    component_of[*j] = Some(mixture.predict(points.row(i)));
                    resolved += 1;
                }
            }
        }
        let mut remap = vec![usize::MAX; k];
        for (cluster, component) in component_of.into_iter().enumerate() {
            if let Some(c) = component {
                remap[c] = cluster;
            }
        }
        let mut next = seen;
        for slot in remap.iter_mut() {
            if *slot == usize::MAX {
                *slot = next;
                next += 1;
            }
        }
        Self { mixture, remap }
    }

    /// The fitted mixture.
    pub fn mixture(&self) -> &GaussianMixture {
        &self.mixture
    }

    /// Reconstruct a model from its [`serialize`](Model::serialize)
    /// payload (header already stripped by the persistence layer).
    pub fn deserialize(payload: &str) -> Result<Self, String> {
        let mut reader = PayloadReader::new(payload);
        let dims: usize = reader.scalar("dims")?;
        let k: usize = reader.scalar("components")?;
        let weights = reader.float_list("weights", k)?;
        let remap: Vec<usize> = reader.list("remap", k)?;
        let log_likelihood = reader
            .float_list("log-likelihood", 1)
            .map(|v| v[0])
            .map_err(|e| format!("log-likelihood: {e}"))?;
        let iterations: usize = reader.scalar("iterations")?;
        let means = read_matrix(&mut reader, k, dims).map_err(|e| format!("means: {e}"))?;
        let mut covariances = Vec::with_capacity(k);
        for _ in 0..k {
            let flat = reader.float_row(dims * dims)?;
            covariances.push(Matrix::from_vec(dims, dims, flat));
        }
        Ok(Self {
            mixture: GaussianMixture {
                weights,
                means,
                covariances,
                log_likelihood,
                iterations,
            },
            remap,
        })
    }
}

impl Model for EmModel {
    fn algorithm(&self) -> &str {
        "em"
    }

    fn dims(&self) -> usize {
        self.mixture.means.dims()
    }

    fn predict_one(&self, point: &[f64]) -> Option<usize> {
        if point.len() != self.dims() || !point.iter().all(|v| v.is_finite()) {
            return None;
        }
        Some(self.remap[self.mixture.predict(point)])
    }

    fn summary(&self) -> String {
        format!(
            "em model: argmax posterior over {} Gaussian components in {} \
             dimensions; every finite point gets a cluster, non-finite \
             points are noise",
            self.mixture.weights.len(),
            self.dims(),
        )
    }

    fn serialize(&self) -> Option<String> {
        let dims = self.dims();
        let k = self.mixture.weights.len();
        let mut out = String::new();
        out.push_str(&format!("dims {dims}\n"));
        out.push_str(&format!("components {k}\n"));
        out.push_str(&format!("weights {}\n", join_hex(&self.mixture.weights)));
        out.push_str(&format!("remap {}\n", join_usize(&self.remap)));
        out.push_str(&format!(
            "log-likelihood {}\n",
            f64_to_hex(self.mixture.log_likelihood)
        ));
        out.push_str(&format!("iterations {}\n", self.mixture.iterations));
        write_matrix(&mut out, &self.mixture.means);
        for cov in &self.mixture.covariances {
            let hex: Vec<String> = cov.as_slice().iter().map(|&v| f64_to_hex(v)).collect();
            out.push_str(&hex.join(" "));
            out.push('\n');
        }
        Some(out)
    }
}

/// Mode-seeking prediction for mean shift: a query point is shifted over
/// the *training* density until it converges onto a mode, which is merged
/// against the trained mode representatives with the fit's own rule. A
/// training point replays its exact fit trajectory, so training
/// predictions are bit-identical to the fit labels; a query converging to
/// a region no training point reached is noise.
pub struct MeanShiftModel {
    training: PointMatrix,
    /// kd-index over `training`, built once at fit/load time so every
    /// `predict_one` call serves without re-indexing the training set.
    index: KdIndex,
    bandwidth: f64,
    kernel: MeanShiftKernel,
    max_iterations: usize,
    tolerance: f64,
    representatives: PointMatrix,
    /// Final cluster id of each representative (creation order); `None`
    /// for representatives demoted to noise by `min_cluster_size`.
    rep_labels: Vec<Option<usize>>,
}

impl MeanShiftModel {
    /// Fit mean shift and build its serving model in one pass.
    pub fn fit(points: PointsView<'_>, config: &MeanShiftConfig) -> (Clustering, Self) {
        let (raw, representatives, kept) = crate::meanshift::mean_shift_parts(points, config);
        let clustering = Clustering::new(raw.clone());
        let remap = compact_remap(raw.iter().filter_map(|a| *a), representatives.len());
        let rep_labels = kept
            .iter()
            .enumerate()
            .map(|(c, &keep)| keep.then(|| remap[c]))
            .collect();
        let training = points.to_matrix();
        let index = KdIndex::build(training.view());
        let model = Self {
            training,
            index,
            bandwidth: config.bandwidth.max(1e-12),
            kernel: config.kernel,
            max_iterations: config.max_iterations,
            tolerance: config.tolerance,
            representatives,
            rep_labels,
        };
        (clustering, model)
    }

    /// The trained mode representatives, in creation order.
    pub fn representatives(&self) -> &PointMatrix {
        &self.representatives
    }

    /// Reconstruct a model from its [`serialize`](Model::serialize)
    /// payload (header already stripped by the persistence layer).
    pub fn deserialize(payload: &str) -> Result<Self, String> {
        let mut reader = PayloadReader::new(payload);
        let dims: usize = reader.scalar("dims")?;
        let bandwidth = reader
            .float_list("bandwidth", 1)
            .map(|v| v[0])
            .map_err(|e| format!("bandwidth: {e}"))?;
        let kernel = match reader.field("kernel")? {
            "flat" => MeanShiftKernel::Flat,
            "gaussian" => MeanShiftKernel::Gaussian,
            other => return Err(format!("unknown kernel '{other}'")),
        };
        let max_iterations: usize = reader.scalar("max-iterations")?;
        let tolerance = reader
            .float_list("tolerance", 1)
            .map(|v| v[0])
            .map_err(|e| format!("tolerance: {e}"))?;
        let reps: usize = reader.scalar("representatives")?;
        let rep_labels = parse_labels(reader.field("rep-labels")?, reps)?;
        let n: usize = reader.scalar("training")?;
        let representatives =
            read_matrix(&mut reader, reps, dims).map_err(|e| format!("representatives: {e}"))?;
        let training = read_matrix(&mut reader, n, dims).map_err(|e| format!("training: {e}"))?;
        let index = KdIndex::build(training.view());
        Ok(Self {
            training,
            index,
            bandwidth,
            kernel,
            max_iterations,
            tolerance,
            representatives,
            rep_labels,
        })
    }

    /// A seeker borrowing the cached training index — no per-call rebuild.
    fn seeker(&self) -> ModeSeeker<'_> {
        ModeSeeker::with_index(
            self.training.view(),
            std::borrow::Cow::Borrowed(&self.index),
            self.bandwidth,
            self.kernel,
            self.max_iterations,
            self.tolerance,
        )
    }

    fn classify(
        &self,
        seeker: &ModeSeeker<'_>,
        point: &[f64],
        scratch: &mut [f64],
    ) -> Option<usize> {
        if !point.iter().all(|v| v.is_finite()) {
            return None;
        }
        let dims = self.training.dims();
        let (current, mean) = scratch.split_at_mut(dims);
        seeker.seek(point, current, mean);
        ModeSeeker::merge_to(&self.representatives, current, self.bandwidth / 2.0)
            .and_then(|c| self.rep_labels[c])
    }
}

impl Model for MeanShiftModel {
    fn algorithm(&self) -> &str {
        "meanshift"
    }

    fn dims(&self) -> usize {
        self.training.dims()
    }

    /// Serves from the kd-index cached at fit/load time — no per-call
    /// re-indexing of the training set.
    fn predict_one(&self, point: &[f64]) -> Option<usize> {
        if point.len() != self.dims() {
            return None;
        }
        let seeker = self.seeker();
        let mut scratch = vec![0.0; self.dims() * 2];
        self.classify(&seeker, point, &mut scratch)
    }

    fn predict(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError> {
        validate_predict_input(self.dims(), points)?;
        let seeker = self.seeker();
        let mut scratch = vec![0.0; self.dims() * 2];
        Ok(Clustering::new(
            points
                .rows()
                .map(|p| self.classify(&seeker, p, &mut scratch))
                .collect(),
        ))
    }

    fn summary(&self) -> String {
        format!(
            "meanshift model: mode seeking over the {}-point training \
             density (bandwidth {}), merged against {} trained modes; \
             queries converging outside every trained mode are noise",
            self.training.len(),
            self.bandwidth,
            self.representatives.len(),
        )
    }

    /// The payload memorizes the training batch (mode seeking replays over
    /// the training density), so meanshift model files scale with n.
    fn serialize(&self) -> Option<String> {
        let mut out = String::new();
        out.push_str(&format!("dims {}\n", self.dims()));
        out.push_str(&format!("bandwidth {}\n", f64_to_hex(self.bandwidth)));
        out.push_str(&format!(
            "kernel {}\n",
            match self.kernel {
                MeanShiftKernel::Flat => "flat",
                MeanShiftKernel::Gaussian => "gaussian",
            }
        ));
        out.push_str(&format!("max-iterations {}\n", self.max_iterations));
        out.push_str(&format!("tolerance {}\n", f64_to_hex(self.tolerance)));
        out.push_str(&format!("representatives {}\n", self.representatives.len()));
        out.push_str(&format!("rep-labels {}\n", join_labels(&self.rep_labels)));
        out.push_str(&format!("training {}\n", self.training.len()));
        write_matrix(&mut out, &self.representatives);
        write_matrix(&mut out, &self.training);
        Some(out)
    }
}

/// Modal-interval prediction for the 1-D UniDip projection: a point is
/// assigned to the first trained modal interval containing its projected
/// coordinate — the fit's own rule, so training predictions are exact.
#[derive(Debug, Clone)]
pub struct IntervalModel {
    dims: usize,
    dim: usize,
    intervals: Vec<(f64, f64)>,
    remap: Vec<usize>,
}

impl IntervalModel {
    /// Build from the fitted modal intervals; `raw` is the per-point
    /// interval index sequence the fit produced (for id alignment).
    pub fn new(dims: usize, dim: usize, intervals: Vec<(f64, f64)>, raw: &[Option<usize>]) -> Self {
        let remap = compact_remap(raw.iter().filter_map(|a| *a), intervals.len());
        Self {
            dims,
            dim,
            intervals,
            remap,
        }
    }

    /// The modal intervals on the projected axis.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// Reconstruct a model from its [`serialize`](Model::serialize)
    /// payload (header already stripped by the persistence layer).
    pub fn deserialize(payload: &str) -> Result<Self, String> {
        let mut reader = PayloadReader::new(payload);
        let dims: usize = reader.scalar("dims")?;
        let dim: usize = reader.scalar("dim")?;
        let k: usize = reader.scalar("intervals")?;
        let remap: Vec<usize> = reader.list("remap", k)?;
        let mut intervals = Vec::with_capacity(k);
        for _ in 0..k {
            let row = reader.float_row(2)?;
            intervals.push((row[0], row[1]));
        }
        Ok(Self {
            dims,
            dim,
            intervals,
            remap,
        })
    }
}

impl Model for IntervalModel {
    fn algorithm(&self) -> &str {
        "unidip"
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn predict_one(&self, point: &[f64]) -> Option<usize> {
        if point.len() != self.dims {
            return None;
        }
        let v = point[self.dim];
        self.intervals
            .iter()
            .position(|&(lo, hi)| v >= lo && v <= hi)
            .map(|pos| self.remap[pos])
    }

    fn summary(&self) -> String {
        format!(
            "unidip model: {} modal intervals on dimension {} of {}; \
             points outside every interval are noise",
            self.intervals.len(),
            self.dim,
            self.dims,
        )
    }

    fn serialize(&self) -> Option<String> {
        let mut out = String::new();
        out.push_str(&format!("dims {}\n", self.dims));
        out.push_str(&format!("dim {}\n", self.dim));
        out.push_str(&format!("intervals {}\n", self.intervals.len()));
        out.push_str(&format!("remap {}\n", join_usize(&self.remap)));
        for &(lo, hi) in &self.intervals {
            out.push_str(&format!("{} {}\n", f64_to_hex(lo), f64_to_hex(hi)));
        }
        Some(out)
    }
}

/// The honest fallback for algorithms with no natural out-of-sample rule
/// (DBSCAN, OPTICS, WaveCluster, STING, CLIQUE, SYNC, spectral, dip-based,
/// RIC): predict the label of the nearest training point through the
/// a cached [`KdIndex`]. This memorizes the training batch; a query equal
/// to a training point reproduces that point's fit label (including
/// noise), which is what makes training predictions exact.
pub struct NearestTrainingModel {
    algorithm: String,
    training: PointMatrix,
    /// kd-index over `training`, built once at construction/load so every
    /// `predict_one` call serves without re-indexing the training set.
    index: KdIndex,
    labels: Vec<Option<usize>>,
}

impl NearestTrainingModel {
    /// Memorize the training batch and its fit labels.
    pub fn new(
        algorithm: impl Into<String>,
        points: PointsView<'_>,
        clustering: &Clustering,
    ) -> Self {
        let training = points.to_matrix();
        let index = KdIndex::build(training.view());
        Self {
            algorithm: algorithm.into(),
            training,
            index,
            labels: clustering.assignment().to_vec(),
        }
    }

    fn classify(&self, point: &[f64]) -> Option<usize> {
        if !point.iter().all(|v| v.is_finite()) {
            return None;
        }
        let nearest = self.index.nearest(self.training.view(), point, 1);
        nearest.first().and_then(|&(i, _)| self.labels[i])
    }

    /// Reconstruct a model from its [`serialize`](Model::serialize)
    /// payload; `algorithm` is the registry name from the file header
    /// (any fallback-predicting algorithm shares this payload shape).
    pub fn deserialize(algorithm: &str, payload: &str) -> Result<Self, String> {
        let mut reader = PayloadReader::new(payload);
        let dims: usize = reader.scalar("dims")?;
        let n: usize = reader.scalar("points")?;
        let labels = parse_labels(reader.field("labels")?, n)?;
        let training = read_matrix(&mut reader, n, dims).map_err(|e| format!("training: {e}"))?;
        let index = KdIndex::build(training.view());
        Ok(Self {
            algorithm: algorithm.to_string(),
            training,
            index,
            labels,
        })
    }
}

impl Model for NearestTrainingModel {
    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn dims(&self) -> usize {
        self.training.dims()
    }

    /// Serves from the kd-index cached at construction/load time — no
    /// per-call re-indexing of the training set.
    fn predict_one(&self, point: &[f64]) -> Option<usize> {
        if point.len() != self.dims() {
            return None;
        }
        self.classify(point)
    }

    fn predict(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError> {
        validate_predict_input(self.dims(), points)?;
        Ok(Clustering::new(
            points.rows().map(|p| self.classify(p)).collect(),
        ))
    }

    fn summary(&self) -> String {
        format!(
            "{} fallback model: label of the nearest of {} memorized \
             training points ({} clusters; nearest-noise queries predict \
             noise) — {} has no native out-of-sample rule",
            self.algorithm,
            self.training.len(),
            self.labels
                .iter()
                .flatten()
                .map(|&c| c + 1)
                .max()
                .unwrap_or(0),
            self.algorithm,
        )
    }

    /// The payload memorizes the training batch and its fit labels, so
    /// fallback model files scale with n.
    fn serialize(&self) -> Option<String> {
        let mut out = String::new();
        out.push_str(&format!("dims {}\n", self.dims()));
        out.push_str(&format!("points {}\n", self.training.len()));
        out.push_str(&format!("labels {}\n", join_labels(&self.labels)));
        write_matrix(&mut out, &self.training);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};
    use adawave_data::{shapes, Rng};

    fn blobs() -> PointMatrix {
        let mut rng = Rng::new(11);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.3, 0.3], 150);
        shapes::gaussian_blob(&mut points, &mut rng, &[5.0, 5.0], &[0.3, 0.3], 150);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 6.0], &[0.3, 0.3], 150);
        points
    }

    #[test]
    fn centroid_model_reproduces_kmeans_training_labels() {
        let points = blobs();
        let result = kmeans(points.view(), &KMeansConfig::new(3, 7));
        let model = CentroidModel::aligned(
            "kmeans",
            &result.centroids,
            &result.clustering,
            points.view(),
        );
        assert_eq!(model.predict(points.view()).unwrap(), result.clustering);
        // predict_one ids agree with the training clustering point by point.
        for (i, p) in points.rows().enumerate() {
            assert_eq!(model.predict_one(p), result.clustering.label(i));
        }
        assert_eq!(model.predict_one(&[f64::INFINITY, 0.0]), None);
        assert_eq!(model.predict_one(&[1.0]), None, "wrong dims");
    }

    #[test]
    fn centroid_model_serialization_round_trips() {
        let points = blobs();
        let result = kmeans(points.view(), &KMeansConfig::new(3, 3));
        let model = CentroidModel::aligned(
            "kmeans",
            &result.centroids,
            &result.clustering,
            points.view(),
        );
        let payload = model.serialize().unwrap();
        let loaded = CentroidModel::deserialize("kmeans", &payload).unwrap();
        assert_eq!(loaded.centroids(), model.centroids());
        assert_eq!(
            loaded.predict(points.view()).unwrap(),
            model.predict(points.view()).unwrap()
        );
        assert!(CentroidModel::deserialize("kmeans", "dims x\n").is_err());
        assert!(CentroidModel::deserialize("kmeans", "dims 2\ncentroids 4\n").is_err());
    }

    #[test]
    fn nearest_training_model_memorizes_labels_including_noise() {
        let points =
            PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![9.0, 9.0]]).unwrap();
        let clustering = Clustering::new(vec![Some(0), Some(0), None]);
        let model = NearestTrainingModel::new("dbscan", points.view(), &clustering);
        assert_eq!(model.predict(points.view()).unwrap(), clustering);
        // A fresh point near the noise training point predicts noise.
        assert_eq!(model.predict_one(&[9.1, 9.0]), None);
        assert_eq!(model.predict_one(&[0.05, 0.0]), Some(0));
        assert_eq!(model.predict_one(&[f64::NAN, 0.0]), None);
        assert!(model.summary().contains("fallback"), "{}", model.summary());
    }

    #[test]
    fn em_model_serialization_round_trips_bit_exactly() {
        let points = blobs();
        let (mixture, clustering) = crate::em::em(points.view(), &crate::em::EmConfig::new(3, 5));
        let model = EmModel::aligned(mixture, &clustering, points.view());
        let payload = model.serialize().unwrap();
        let loaded = EmModel::deserialize(&payload).unwrap();
        assert_eq!(
            loaded.predict(points.view()).unwrap(),
            model.predict(points.view()).unwrap()
        );
        // Deterministic payload: serializing the loaded model is identical.
        assert_eq!(loaded.serialize().unwrap(), payload);
        assert!(EmModel::deserialize("dims 2\n").is_err(), "truncated");
        assert!(EmModel::deserialize("").is_err());
    }

    #[test]
    fn meanshift_model_serialization_round_trips_bit_exactly() {
        let points = blobs();
        let config = MeanShiftConfig {
            bandwidth: 0.8,
            ..Default::default()
        };
        let (clustering, model) = MeanShiftModel::fit(points.view(), &config);
        let payload = model.serialize().unwrap();
        let loaded = MeanShiftModel::deserialize(&payload).unwrap();
        assert_eq!(loaded.predict(points.view()).unwrap(), clustering);
        assert_eq!(loaded.serialize().unwrap(), payload);
        assert!(MeanShiftModel::deserialize("dims 2\nbandwidth xyz\n").is_err());
    }

    #[test]
    fn interval_model_serialization_round_trips_bit_exactly() {
        let raw = vec![Some(1), None, Some(0)];
        let model = IntervalModel::new(2, 0, vec![(0.0, 1.0), (2.0, 3.0)], &raw);
        let payload = model.serialize().unwrap();
        let loaded = IntervalModel::deserialize(&payload).unwrap();
        assert_eq!(loaded.serialize().unwrap(), payload);
        for p in [[0.5, 0.0], [2.5, 0.0], [1.5, 0.0], [f64::NAN, 0.0]] {
            assert_eq!(loaded.predict_one(&p), model.predict_one(&p));
        }
        assert!(IntervalModel::deserialize("dims 2\ndim 0\nintervals 2\nremap 0\n").is_err());
    }

    #[test]
    fn nearest_training_model_serialization_round_trips_bit_exactly() {
        let points =
            PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![9.0, 9.0]]).unwrap();
        let clustering = Clustering::new(vec![Some(0), Some(0), None]);
        let model = NearestTrainingModel::new("dbscan", points.view(), &clustering);
        let payload = model.serialize().unwrap();
        let loaded = NearestTrainingModel::deserialize("dbscan", &payload).unwrap();
        assert_eq!(loaded.algorithm(), "dbscan");
        assert_eq!(loaded.predict(points.view()).unwrap(), clustering);
        assert_eq!(loaded.serialize().unwrap(), payload);
        // The noise label survives the roundtrip.
        assert_eq!(loaded.predict_one(&[9.1, 9.0]), None);
        assert!(
            NearestTrainingModel::deserialize("dbscan", "dims 2\npoints 1\nlabels x\n").is_err()
        );
    }

    #[test]
    fn interval_model_assigns_by_containment() {
        let raw = vec![Some(1), None, Some(0)];
        let model = IntervalModel::new(2, 0, vec![(0.0, 1.0), (2.0, 3.0)], &raw);
        // Raw interval 1 appeared first, so it owns cluster id 0.
        assert_eq!(model.predict_one(&[2.5, 0.0]), Some(0));
        assert_eq!(model.predict_one(&[0.5, 0.0]), Some(1));
        assert_eq!(model.predict_one(&[1.5, 0.0]), None);
        assert_eq!(model.predict_one(&[f64::NAN, 0.0]), None);
    }
}
