//! A uniform hash grid over tolerance-sized cells, used to accelerate the
//! "first representative within tolerance" scans in mean shift mode
//! merging and Sync group assignment.
//!
//! ## Correctness argument (label identity with the brute scan)
//!
//! Cell width is `2 × tolerance`. For any two points within `tolerance` of
//! each other — under the Euclidean *or* the per-coordinate (Chebyshev)
//! metric — every coordinate differs by at most `tolerance`, so the
//! quotients `coord / width` differ by at most `0.5` plus a few ulps of
//! division rounding, and their floors differ by at most 1. Probing the
//! `3^d` cells around the query therefore visits a guaranteed superset of
//! every representative that can satisfy the tolerance predicate. The
//! caller then evaluates its *exact original predicate* on the candidates
//! and keeps the **minimum** matching id — which equals the first match of
//! a linear scan in insertion order. Candidates outside the predicate are
//! discarded, so the accelerated path returns exactly the brute-force
//! answer for every input.
//!
//! The grid is only constructed for `1 ≤ dims ≤` [`CellGrid::MAX_DIMS`]
//! and a positive finite tolerance ([`CellGrid::try_new`] returns `None`
//! otherwise); callers keep the brute scan as the fallback path.

use std::collections::HashMap;

/// Hash grid of representative ids bucketed by tolerance-sized cell.
#[derive(Debug)]
pub(crate) struct CellGrid {
    cell_width: f64,
    dims: usize,
    cells: HashMap<Vec<i64>, Vec<usize>>,
    /// Scratch buffer for cell coordinates (avoids per-query allocation).
    scratch: Vec<i64>,
}

impl CellGrid {
    /// Largest dimensionality worth probing (3^d neighbor cells per query).
    pub(crate) const MAX_DIMS: usize = 4;

    /// A grid over `2 × tolerance` cells, or `None` when the configuration
    /// is outside the grid's sweet spot (degenerate tolerance, too many
    /// dims) and the caller should use its brute scan instead.
    pub(crate) fn try_new(dims: usize, tolerance: f64) -> Option<Self> {
        let cell_width = 2.0 * tolerance;
        let usable_width = cell_width > 0.0 && cell_width.is_finite();
        if !(1..=Self::MAX_DIMS).contains(&dims) || !usable_width {
            return None;
        }
        Some(Self {
            cell_width,
            dims,
            cells: HashMap::new(),
            scratch: vec![0i64; dims],
        })
    }

    fn cell_coord(&self, v: f64) -> i64 {
        // Saturating `as` conversion: non-finite or huge coordinates land
        // in an extreme cell; the caller's exact predicate still decides.
        (v / self.cell_width).floor() as i64
    }

    /// Insert representative `id` located at `point`.
    pub(crate) fn insert(&mut self, id: usize, point: &[f64]) {
        debug_assert_eq!(point.len(), self.dims);
        let key: Vec<i64> = point.iter().map(|&v| self.cell_coord(v)).collect();
        self.cells.entry(key).or_default().push(id);
    }

    /// The minimum inserted id in the `3^dims` cells around `point` that
    /// satisfies `predicate` — exactly the first match of a linear scan in
    /// insertion order, provided every point within the tolerance metric
    /// the grid was sized for satisfies the cell-distance bound (see the
    /// module docs).
    pub(crate) fn min_matching(
        &mut self,
        point: &[f64],
        mut predicate: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        debug_assert_eq!(point.len(), self.dims);
        let center: Vec<i64> = point.iter().map(|&v| self.cell_coord(v)).collect();
        let mut best: Option<usize> = None;
        // Enumerate the 3^dims offset combinations with a base-3 counter.
        let probes = 3usize.pow(self.dims as u32);
        for p in 0..probes {
            let mut rem = p;
            for (s, &c) in self.scratch.iter_mut().zip(center.iter()) {
                let offset = (rem % 3) as i64 - 1;
                *s = c.saturating_add(offset);
                rem /= 3;
            }
            if let Some(ids) = self.cells.get(self.scratch.as_slice()) {
                for &id in ids {
                    if best.is_some_and(|b| id >= b) {
                        continue;
                    }
                    if predicate(id) {
                        best = Some(id);
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_data::Rng;

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(CellGrid::try_new(0, 0.1).is_none());
        assert!(CellGrid::try_new(2, 0.0).is_none());
        assert!(CellGrid::try_new(2, -1.0).is_none());
        assert!(CellGrid::try_new(2, f64::INFINITY).is_none());
        assert!(CellGrid::try_new(2, f64::NAN).is_none());
        assert!(CellGrid::try_new(CellGrid::MAX_DIMS + 1, 0.1).is_none());
        assert!(CellGrid::try_new(2, 0.1).is_some());
    }

    #[test]
    fn min_matching_equals_brute_first_match_euclidean() {
        // Random representatives + queries; the grid's min matching id must
        // equal the first id within tolerance in insertion order.
        let tol = 0.07;
        let mut rng = Rng::new(42);
        for dims in 1..=3usize {
            let mut grid = CellGrid::try_new(dims, tol).unwrap();
            let reps: Vec<Vec<f64>> = (0..120)
                .map(|_| (0..dims).map(|_| rng.uniform()).collect())
                .collect();
            for (id, rep) in reps.iter().enumerate() {
                grid.insert(id, rep);
            }
            for _ in 0..200 {
                let q: Vec<f64> = (0..dims).map(|_| rng.uniform()).collect();
                let within = |id: usize| {
                    let d2: f64 = reps[id]
                        .iter()
                        .zip(q.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    d2.sqrt() <= tol
                };
                let brute = (0..reps.len()).find(|&id| within(id));
                assert_eq!(grid.min_matching(&q, within), brute, "dims={dims}");
            }
        }
    }

    #[test]
    fn min_matching_equals_brute_first_match_chebyshev() {
        let tol = 0.05;
        let mut rng = Rng::new(9);
        let dims = 2;
        let mut grid = CellGrid::try_new(dims, tol).unwrap();
        let reps: Vec<Vec<f64>> = (0..80)
            .map(|_| (0..dims).map(|_| rng.uniform()).collect())
            .collect();
        for (id, rep) in reps.iter().enumerate() {
            grid.insert(id, rep);
        }
        for _ in 0..200 {
            let q: Vec<f64> = (0..dims).map(|_| rng.uniform()).collect();
            let within = |id: usize| {
                reps[id]
                    .iter()
                    .zip(q.iter())
                    .all(|(a, b)| (a - b).abs() <= tol)
            };
            let brute = (0..reps.len()).find(|&id| within(id));
            assert_eq!(grid.min_matching(&q, within), brute);
        }
    }

    #[test]
    fn boundary_points_on_cell_edges_are_found() {
        // Points exactly on cell boundaries exercise the ±1 probe band.
        let tol = 0.5; // cell width 1.0
        let mut grid = CellGrid::try_new(1, tol).unwrap();
        grid.insert(0, &[1.0]); // cell 1
                                // Query in cell 0 at distance exactly tol.
        assert_eq!(grid.min_matching(&[0.5], |_| true), Some(0));
        // Query two cells away: not probed, and correctly out of range.
        assert_eq!(grid.min_matching(&[3.5], |_| true), None);
    }
}
