//! OPTICS (Ankerst et al., SIGMOD 1999).
//!
//! The paper cites OPTICS as the other classic density-based method next to
//! DBSCAN (§I, reference \[20\]). OPTICS does not produce a flat clustering
//! directly: it orders the points so that density-based clusters of *every*
//! radius up to `max_eps` appear as valleys of the reachability plot. A flat
//! clustering is then extracted with a reachability cut, equivalent to
//! running DBSCAN at that radius but without re-running the expansion.

use adawave_api::PointsView;
use adawave_linalg::{euclidean_distance, squared_distance};

use crate::{Clustering, KdTree};

/// Configuration for [`optics`].
#[derive(Debug, Clone)]
pub struct OpticsConfig {
    /// Maximum neighborhood radius considered when computing reachability.
    pub max_eps: f64,
    /// Minimum number of points (including the point itself) for a point to
    /// be a core point.
    pub min_points: usize,
    /// Reachability cut used by
    /// [`OpticsOrdering::extract_dbscan_clustering`]; points whose
    /// reachability exceeds the cut start a new cluster (if they are core at
    /// the cut) or become noise.
    pub extraction_eps: f64,
}

impl OpticsConfig {
    /// Create a configuration with an explicit extraction radius.
    pub fn new(max_eps: f64, min_points: usize, extraction_eps: f64) -> Self {
        Self {
            max_eps,
            min_points,
            extraction_eps,
        }
    }
}

impl Default for OpticsConfig {
    fn default() -> Self {
        Self {
            max_eps: 0.1,
            min_points: 8,
            extraction_eps: 0.05,
        }
    }
}

/// The ordering produced by OPTICS: for every position in the ordering, the
/// index of the point, its reachability distance (`f64::INFINITY` for the
/// first point of each density-connected group) and its core distance
/// (`None` if the point is not a core point at `max_eps`).
#[derive(Debug, Clone)]
pub struct OpticsOrdering {
    /// Point indices in visit order.
    pub order: Vec<usize>,
    /// Reachability distance of each ordered point.
    pub reachability: Vec<f64>,
    /// Core distance of each ordered point.
    pub core_distance: Vec<Option<f64>>,
    min_points: usize,
}

impl OpticsOrdering {
    /// Number of ordered points.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Extract a flat clustering equivalent to DBSCAN at radius
    /// `extraction_eps` (which must be ≤ the `max_eps` used to build the
    /// ordering).
    pub fn extract_dbscan_clustering(&self, extraction_eps: f64) -> Clustering {
        let n = self.order.len();
        let mut assignment = vec![None; n];
        let mut cluster: Option<usize> = None;
        let mut next_cluster = 0usize;
        for pos in 0..n {
            let point = self.order[pos];
            if self.reachability[pos] > extraction_eps {
                // Not density-reachable at the cut: either starts a new
                // cluster (if core at the cut) or is noise.
                match self.core_distance[pos] {
                    Some(core) if core <= extraction_eps => {
                        cluster = Some(next_cluster);
                        next_cluster += 1;
                        assignment[point] = cluster;
                    }
                    _ => {
                        cluster = None;
                    }
                }
            } else {
                assignment[point] = cluster;
            }
        }
        Clustering::new(assignment)
    }

    /// The `min_points` parameter the ordering was built with.
    pub fn min_points(&self) -> usize {
        self.min_points
    }
}

/// Compute the OPTICS ordering of a point set.
pub fn optics_ordering(points: PointsView<'_>, max_eps: f64, min_points: usize) -> OpticsOrdering {
    let n = points.len();
    let mut ordering = OpticsOrdering {
        order: Vec::with_capacity(n),
        reachability: Vec::with_capacity(n),
        core_distance: Vec::with_capacity(n),
        min_points,
    };
    if n == 0 {
        return ordering;
    }
    let tree = KdTree::build(points);
    let mut processed = vec![false; n];
    // Current best reachability estimate per point (not yet in the order).
    let mut reach = vec![f64::INFINITY; n];

    let core_distance = |idx: usize| -> Option<f64> {
        // Sort *squared* distances and root the order statistic once at
        // the edge: IEEE sqrt is monotone, so the selected value is
        // bit-identical to sorting rooted distances.
        let mut dists: Vec<f64> = tree
            .within_radius(points.row(idx), max_eps)
            .into_iter()
            .map(|j| squared_distance(points.row(idx), points.row(j)))
            .collect();
        if dists.len() < min_points {
            return None;
        }
        dists.sort_by(f64::total_cmp);
        Some(dists[min_points - 1].sqrt())
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        // Seed list of (point) candidates reachable from the current group,
        // processed in order of best-known reachability.
        let mut seeds: Vec<usize> = vec![start];
        reach[start] = f64::INFINITY;
        while let Some(best_pos) = seeds
            .iter()
            .enumerate()
            .filter(|(_, &p)| !processed[p])
            .min_by(|a, b| reach[*a.1].total_cmp(&reach[*b.1]))
            .map(|(i, _)| i)
        {
            let current = seeds.swap_remove(best_pos);
            if processed[current] {
                continue;
            }
            processed[current] = true;
            let core = core_distance(current);
            ordering.order.push(current);
            ordering.reachability.push(reach[current]);
            ordering.core_distance.push(core);
            if let Some(core) = core {
                // Update reachability of unprocessed neighbors.
                for j in tree.within_radius(points.row(current), max_eps) {
                    if processed[j] {
                        continue;
                    }
                    // Stays in *distance* space deliberately: `new_reach`
                    // feeds the strict `<` seed-ordering comparisons, and
                    // distinct squared values can round to equal roots —
                    // rewriting this to squared space could reorder seeds.
                    let new_reach =
                        core.max(euclidean_distance(points.row(current), points.row(j)));
                    if new_reach < reach[j] {
                        if reach[j].is_infinite() {
                            seeds.push(j);
                        }
                        reach[j] = new_reach;
                    }
                }
            }
        }
    }
    ordering
}

/// Run OPTICS and extract a flat clustering at `config.extraction_eps`.
pub fn optics(points: PointsView<'_>, config: &OpticsConfig) -> Clustering {
    optics_ordering(points, config.max_eps, config.min_points)
        .extract_dbscan_clustering(config.extraction_eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{dbscan, DbscanConfig};
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami, NOISE_LABEL};

    fn two_blobs_with_noise() -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(31);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.2, 0.2], &[0.02, 0.02], 150);
        truth.extend(std::iter::repeat_n(0usize, 150));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.8, 0.8], &[0.02, 0.02], 150);
        truth.extend(std::iter::repeat_n(1usize, 150));
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 60);
        truth.extend(std::iter::repeat_n(2usize, 60));
        (points, truth)
    }

    #[test]
    fn finds_two_blobs() {
        let (points, truth) = two_blobs_with_noise();
        let clustering = optics(points.view(), &OpticsConfig::new(0.15, 8, 0.05));
        assert!(clustering.cluster_count() >= 2);
        let score = ami(&truth, &clustering.to_labels(NOISE_LABEL));
        assert!(score > 0.6, "AMI {score}");
    }

    #[test]
    fn ordering_covers_every_point_exactly_once() {
        let (points, _) = two_blobs_with_noise();
        let ordering = optics_ordering(points.view(), 0.15, 8);
        assert_eq!(ordering.len(), points.len());
        let mut seen = vec![false; points.len()];
        for &p in &ordering.order {
            assert!(!seen[p], "point {p} ordered twice");
            seen[p] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn reachability_valleys_match_clusters() {
        let (points, _) = two_blobs_with_noise();
        let ordering = optics_ordering(points.view(), 0.2, 8);
        // Reachability inside a tight blob is small; the plot must contain a
        // long run of small values (the valley of the first blob).
        let small: usize = ordering
            .reachability
            .iter()
            .filter(|r| r.is_finite() && **r < 0.02)
            .count();
        assert!(small > 100, "only {small} small reachabilities");
    }

    #[test]
    fn extraction_matches_dbscan_cluster_structure() {
        let (points, _) = two_blobs_with_noise();
        let ordering = optics_ordering(points.view(), 0.2, 8);
        let from_optics = ordering.extract_dbscan_clustering(0.05);
        let from_dbscan = dbscan(points.view(), &DbscanConfig::new(0.05, 8));
        // The two extractions agree almost everywhere (border points may
        // legitimately differ), so compare with AMI over all points.
        let score = ami(
            &from_optics.to_labels(NOISE_LABEL),
            &from_dbscan.to_labels(NOISE_LABEL),
        );
        assert!(score > 0.9, "AMI versus DBSCAN {score}");
        assert_eq!(from_optics.cluster_count(), from_dbscan.cluster_count());
    }

    #[test]
    fn empty_input() {
        let clustering = optics(PointMatrix::new(2).view(), &OpticsConfig::default());
        assert!(clustering.is_empty());
        assert!(optics_ordering(PointMatrix::new(2).view(), 0.1, 5).is_empty());
    }

    #[test]
    fn all_noise_when_nothing_is_dense() {
        let points =
            PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![0.5, 0.5], vec![1.0, 1.0]]).unwrap();
        let clustering = optics(points.view(), &OpticsConfig::new(0.01, 5, 0.01));
        assert_eq!(clustering.cluster_count(), 0);
        assert_eq!(clustering.noise_count(), 3);
    }
}
