//! A simple kd-tree for fixed-radius and nearest-neighbor queries.
//!
//! DBSCAN's region queries and STSC's local-scale estimation need neighbor
//! search; a kd-tree keeps them near `O(log n)` per query on the low-
//! dimensional data where those baselines are competitive.
//!
//! The tree structure itself ([`KdIndex`]) is *owned* and borrows nothing:
//! it stores node topology plus the dimensionality, and every query takes
//! the point set as an argument. That lets trained models cache the index
//! once at fit/load time and serve `predict_one` calls without re-indexing
//! (the structure must be queried against the same point set it was built
//! over — same rows, same order). [`KdTree`] is the thin borrowing wrapper
//! that bundles an index with its point set for callers that build and
//! query in one scope.

use adawave_api::PointsView;
use adawave_linalg::squared_distance;

/// An owned kd-tree structure (median splits) over a flat row-major point
/// set, storing topology only. Queries take the point set as an argument;
/// passing a different point set than the one the index was built over
/// yields meaningless results (and panics if dimensions disagree).
#[derive(Debug, Clone)]
pub struct KdIndex {
    /// Flattened tree: `nodes[i]` = (point index, split dimension).
    nodes: Vec<Node>,
    root: Option<usize>,
    len: usize,
    dims: usize,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    point: usize,
    split_dim: usize,
    left: Option<usize>,
    right: Option<usize>,
}

impl KdIndex {
    /// Build a balanced kd-tree (median splits) over `points`.
    pub fn build(points: PointsView<'_>) -> Self {
        let dims = points.dims();
        let mut indices: Vec<usize> = (0..points.len()).collect();
        let mut nodes = Vec::with_capacity(points.len());
        let root = Self::build_recursive(points, &mut indices[..], 0, dims, &mut nodes);
        Self {
            nodes,
            root,
            len: points.len(),
            dims,
        }
    }

    fn build_recursive(
        points: PointsView<'_>,
        indices: &mut [usize],
        depth: usize,
        dims: usize,
        nodes: &mut Vec<Node>,
    ) -> Option<usize> {
        if indices.is_empty() {
            return None;
        }
        let split_dim = if dims == 0 { 0 } else { depth % dims };
        let mid = indices.len() / 2;
        indices.select_nth_unstable_by(mid, |&a, &b| {
            points.row(a)[split_dim].total_cmp(&points.row(b)[split_dim])
        });
        let point = indices[mid];
        let node_index = nodes.len();
        nodes.push(Node {
            point,
            split_dim,
            left: None,
            right: None,
        });
        let (left_slice, rest) = indices.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = Self::build_recursive(points, left_slice, depth + 1, dims, nodes);
        let right = Self::build_recursive(points, right_slice, depth + 1, dims, nodes);
        nodes[node_index].left = left;
        nodes[node_index].right = right;
        Some(node_index)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality the index was built over.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Indices of all points within `radius` (inclusive) of `query`,
    /// including the query point itself if it is part of the indexed set.
    /// `points` must be the set the index was built over.
    pub fn within_radius(&self, points: PointsView<'_>, query: &[f64], radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.radius_recursive(points, root, query, radius, radius * radius, &mut out);
        }
        out
    }

    fn radius_recursive(
        &self,
        points: PointsView<'_>,
        node_idx: usize,
        query: &[f64],
        radius: f64,
        radius_sq: f64,
        out: &mut Vec<usize>,
    ) {
        let node = self.nodes[node_idx];
        let point = points.row(node.point);
        if squared_distance(point, query) <= radius_sq {
            out.push(node.point);
        }
        if self.dims == 0 {
            return;
        }
        let delta = query[node.split_dim] - point[node.split_dim];
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.radius_recursive(points, n, query, radius, radius_sq, out);
        }
        if delta.abs() <= radius {
            if let Some(f) = far {
                self.radius_recursive(points, f, query, radius, radius_sq, out);
            }
        }
    }

    /// The `k` nearest neighbors of `query` (by Euclidean distance), as
    /// `(index, distance)` pairs sorted by increasing distance. The query
    /// point itself is included if it is part of the indexed set.
    /// `points` must be the set the index was built over.
    pub fn nearest(&self, points: PointsView<'_>, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Max-heap of (distance, index) capped at k elements.
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        if let Some(root) = self.root {
            self.nearest_recursive(points, root, query, k, &mut heap);
        }
        heap.sort_by(|a, b| a.0.total_cmp(&b.0));
        heap.into_iter().map(|(d, i)| (i, d.sqrt())).collect()
    }

    fn nearest_recursive(
        &self,
        points: PointsView<'_>,
        node_idx: usize,
        query: &[f64],
        k: usize,
        heap: &mut Vec<(f64, usize)>,
    ) {
        let node = self.nodes[node_idx];
        let point = points.row(node.point);
        let dist_sq = squared_distance(point, query);
        if heap.len() < k {
            heap.push((dist_sq, node.point));
            heap.sort_by(|a, b| b.0.total_cmp(&a.0)); // largest first
        } else if dist_sq < heap[0].0 {
            heap[0] = (dist_sq, node.point);
            heap.sort_by(|a, b| b.0.total_cmp(&a.0));
        }
        if self.dims == 0 {
            return;
        }
        let delta = query[node.split_dim] - point[node.split_dim];
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_recursive(points, n, query, k, heap);
        }
        let worst = if heap.len() < k { f64::MAX } else { heap[0].0 };
        if delta * delta <= worst {
            if let Some(f) = far {
                self.nearest_recursive(points, f, query, k, heap);
            }
        }
    }
}

/// A kd-tree over a borrowed flat row-major point set: an owned
/// [`KdIndex`] bundled with the point set it was built over.
#[derive(Debug)]
pub struct KdTree<'a> {
    points: PointsView<'a>,
    index: KdIndex,
}

impl<'a> KdTree<'a> {
    /// Build a balanced kd-tree (median splits) over `points`.
    pub fn build(points: PointsView<'a>) -> Self {
        Self {
            points,
            index: KdIndex::build(points),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Indices of all points within `radius` (inclusive) of `query`,
    /// including the query point itself if it is part of the indexed set.
    pub fn within_radius(&self, query: &[f64], radius: f64) -> Vec<usize> {
        self.index.within_radius(self.points, query, radius)
    }

    /// The `k` nearest neighbors of `query` (by Euclidean distance), as
    /// `(index, distance)` pairs sorted by increasing distance. The query
    /// point itself is included if it is part of the indexed set.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        self.index.nearest(self.points, query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::Rng;

    fn brute_within(points: PointsView<'_>, query: &[f64], radius: f64) -> Vec<usize> {
        let r2 = radius * radius;
        let mut out: Vec<usize> = (0..points.len())
            .filter(|&i| squared_distance(points.row(i), query) <= r2)
            .collect();
        out.sort_unstable();
        out
    }

    fn random_points(n: usize, dims: usize, seed: u64) -> PointMatrix {
        let mut rng = Rng::new(seed);
        let mut out = PointMatrix::with_capacity(dims, n);
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = rng.uniform();
            }
            out.push_row(&row);
        }
        out
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let points = random_points(300, 3, 1);
        let tree = KdTree::build(points.view());
        let mut rng = Rng::new(2);
        for _ in 0..50 {
            let query: Vec<f64> = (0..3).map(|_| rng.uniform()).collect();
            let mut got = tree.within_radius(&query, 0.25);
            got.sort_unstable();
            assert_eq!(got, brute_within(points.view(), &query, 0.25));
        }
    }

    #[test]
    fn nearest_query_matches_brute_force() {
        let points = random_points(200, 2, 3);
        let tree = KdTree::build(points.view());
        let mut rng = Rng::new(4);
        for _ in 0..30 {
            let query: Vec<f64> = (0..2).map(|_| rng.uniform()).collect();
            let got = tree.nearest(&query, 5);
            assert_eq!(got.len(), 5);
            // Brute force top-5.
            let mut dists: Vec<(usize, f64)> = points
                .rows()
                .enumerate()
                .map(|(i, p)| (i, squared_distance(p, &query).sqrt()))
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let want: Vec<usize> = dists[..5].iter().map(|&(i, _)| i).collect();
            let got_idx: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
            assert_eq!(got_idx, want);
            // Distances are sorted ascending.
            for w in got.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn owned_index_matches_borrowing_wrapper() {
        let points = random_points(120, 2, 7);
        let tree = KdTree::build(points.view());
        let index = KdIndex::build(points.view());
        assert_eq!(index.len(), 120);
        assert_eq!(index.dims(), 2);
        let mut rng = Rng::new(8);
        for _ in 0..20 {
            let query: Vec<f64> = (0..2).map(|_| rng.uniform()).collect();
            assert_eq!(
                index.within_radius(points.view(), &query, 0.2),
                tree.within_radius(&query, 0.2)
            );
            assert_eq!(
                index.nearest(points.view(), &query, 4),
                tree.nearest(&query, 4)
            );
        }
    }

    #[test]
    fn query_point_included_in_its_own_neighborhood() {
        let points = PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let tree = KdTree::build(points.view());
        let n = tree.within_radius(&[0.0, 0.0], 0.1);
        assert_eq!(n, vec![0]);
        let nn = tree.nearest(&[0.0, 0.0], 1);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[0].1, 0.0);
    }

    #[test]
    fn empty_tree_queries() {
        let points = PointMatrix::new(1);
        let tree = KdTree::build(points.view());
        assert!(tree.is_empty());
        assert!(tree.within_radius(&[0.0], 1.0).is_empty());
        assert!(tree.nearest(&[0.0], 3).is_empty());
    }

    #[test]
    fn k_larger_than_point_count_returns_all() {
        let points = random_points(5, 2, 9);
        let tree = KdTree::build(points.view());
        let got = tree.nearest(&[0.5, 0.5], 10);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn duplicate_points_are_all_found() {
        let points = PointMatrix::from_rows(vec![vec![1.0, 1.0]; 4]).unwrap();
        let tree = KdTree::build(points.view());
        assert_eq!(tree.within_radius(&[1.0, 1.0], 0.0).len(), 4);
    }
}
