//! Integration test of the dip-statistic pipeline (Hartigan dip → UniDip →
//! SkinnyDip) on a dataset whose coordinate projections have a known modal
//! structure — the property SkinnyDip depends on and the reason it fails on
//! the paper's ring-shaped clusters.

use adawave_api::PointMatrix;
use adawave_baselines::dip::{dip_statistic, dip_test, unidip, SkinnyDipConfig};
use adawave_baselines::skinnydip;
use adawave_data::{shapes, Rng};

fn two_blobs_with_noise() -> PointMatrix {
    let mut rng = Rng::new(12);
    let mut points = PointMatrix::new(2);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.2, 0.2], &[0.02, 0.02], 400);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.8, 0.8], &[0.02, 0.02], 400);
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 300);
    points
}

#[test]
fn bimodal_projection_has_a_larger_dip_than_a_unimodal_one() {
    let points = two_blobs_with_noise();
    let bimodal: Vec<f64> = points.rows().map(|p| p[0]).collect();

    let mut rng = Rng::new(77);
    let unimodal: Vec<f64> = (0..bimodal.len())
        .map(|_| rng.normal_with(0.5, 0.1))
        .collect();

    let bimodal_dip = dip_statistic(&bimodal).dip;
    let unimodal_dip = dip_statistic(&unimodal).dip;
    assert!(
        bimodal_dip > 2.0 * unimodal_dip,
        "bimodal dip {bimodal_dip} vs unimodal {unimodal_dip}"
    );
}

#[test]
fn dip_test_rejects_unimodality_only_for_the_bimodal_projection() {
    let points = two_blobs_with_noise();
    let bimodal: Vec<f64> = points.rows().map(|p| p[0]).collect();
    let mut rng = Rng::new(1);
    let (_, p_bimodal) = dip_test(&bimodal, 64, &mut rng);
    assert!(p_bimodal < 0.05, "bimodal p-value {p_bimodal}");

    let mut rng = Rng::new(2);
    let unimodal: Vec<f64> = (0..800).map(|_| rng.normal_with(0.5, 0.1)).collect();
    let mut prng = Rng::new(3);
    let (_, p_unimodal) = dip_test(&unimodal, 64, &mut prng);
    assert!(p_unimodal > 0.05, "unimodal p-value {p_unimodal}");
}

#[test]
fn unidip_finds_both_modes_of_the_x_projection() {
    let points = two_blobs_with_noise();
    let xs: Vec<f64> = points.rows().map(|p| p[0]).collect();
    let config = SkinnyDipConfig {
        bootstraps: 48,
        seed: 3,
        ..Default::default()
    };
    let mut rng = Rng::new(9);
    let intervals = unidip(&xs, &config, &mut rng);
    assert_eq!(intervals.len(), 2, "intervals {intervals:?}");
    // One interval around 0.2, the other around 0.8, neither spanning both.
    // `unidip` returns (low, high) *value* ranges, so the center is their
    // midpoint directly.
    let centers: Vec<f64> = intervals.iter().map(|&(lo, hi)| (lo + hi) / 2.0).collect();
    assert!(
        centers.iter().any(|&c| (c - 0.2).abs() < 0.1),
        "{centers:?}"
    );
    assert!(
        centers.iter().any(|&c| (c - 0.8).abs() < 0.1),
        "{centers:?}"
    );
}

#[test]
fn skinnydip_clusters_the_axis_aligned_blobs() {
    // Blobs whose projections are unimodal per cluster on every axis are
    // exactly SkinnyDip's favorable case.
    let points = two_blobs_with_noise();
    let config = SkinnyDipConfig {
        bootstraps: 48,
        seed: 3,
        ..Default::default()
    };
    let clustering = skinnydip(points.view(), &config);
    assert!(
        clustering.cluster_count() >= 2,
        "found {} clusters",
        clustering.cluster_count()
    );
    // The uniform background should largely be recognized as noise.
    assert!(clustering.noise_count() > 100);
}
