//! A uniform interface over AdaWave and every baseline, so experiments can
//! sweep algorithms the same way the paper's tables do.
//!
//! Since the unified-API redesign there is no per-algorithm dispatch here:
//! every algorithm is resolved by name through the standard
//! [`AlgorithmRegistry`], and the only per-algorithm knowledge left is the
//! *paper's protocol* — which parameters each algorithm receives
//! ([`Algorithm::candidate_specs`]), expressed as data
//! ([`AlgorithmSpec`]s), not as code.

use std::time::Instant;

use adawave::{standard_registry, AlgorithmRegistry, AlgorithmSpec, Clustering, PointsView};
use adawave_metrics::{ami, ami_ignoring_noise, NOISE_LABEL};

/// The algorithms compared in the paper's evaluation (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// AdaWave (this paper).
    AdaWave,
    /// SkinnyDip (Maurus & Plant 2016).
    SkinnyDip,
    /// DBSCAN with the paper's automation protocol (minPts = 8, best eps).
    Dbscan,
    /// Full-covariance Gaussian mixture fitted with EM.
    Em,
    /// k-means with the correct k.
    KMeans,
    /// Self-tuning spectral clustering.
    Stsc,
    /// DipMeans.
    DipMeans,
    /// Simplified robust information-theoretic clustering.
    Ric,
    /// The original WaveCluster (dense grid, fixed threshold).
    WaveCluster,
}

impl Algorithm {
    /// The algorithms of Fig. 8 (synthetic noise sweep).
    pub const FIG8: [Algorithm; 6] = [
        Algorithm::AdaWave,
        Algorithm::SkinnyDip,
        Algorithm::Dbscan,
        Algorithm::Em,
        Algorithm::KMeans,
        Algorithm::WaveCluster,
    ];

    /// The algorithms of Table I (real-world datasets).
    pub const TABLE1: [Algorithm; 8] = [
        Algorithm::AdaWave,
        Algorithm::SkinnyDip,
        Algorithm::Dbscan,
        Algorithm::Em,
        Algorithm::KMeans,
        Algorithm::Stsc,
        Algorithm::DipMeans,
        Algorithm::Ric,
    ];

    /// The algorithms of the runtime comparison (Fig. 10).
    pub const FIG10: [Algorithm; 5] = [
        Algorithm::AdaWave,
        Algorithm::SkinnyDip,
        Algorithm::Dbscan,
        Algorithm::KMeans,
        Algorithm::Em,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::AdaWave => "AdaWave",
            Algorithm::SkinnyDip => "SkinnyDip",
            Algorithm::Dbscan => "DBSCAN",
            Algorithm::Em => "EM",
            Algorithm::KMeans => "k-means",
            Algorithm::Stsc => "STSC",
            Algorithm::DipMeans => "DipMean",
            Algorithm::Ric => "RIC",
            Algorithm::WaveCluster => "WaveCluster",
        }
    }

    /// The registry key this algorithm resolves through.
    pub fn registry_key(&self) -> &'static str {
        match self {
            Algorithm::AdaWave => "adawave",
            Algorithm::SkinnyDip => "skinnydip",
            Algorithm::Dbscan => "dbscan",
            Algorithm::Em => "em",
            Algorithm::KMeans => "kmeans",
            Algorithm::Stsc => "stsc",
            Algorithm::DipMeans => "dipmeans",
            Algorithm::Ric => "ric",
            Algorithm::WaveCluster => "wavecluster",
        }
    }

    /// The paper's parameterization protocol, as data: the spec(s) to run
    /// for this algorithm under `options`. Most algorithms yield exactly
    /// one spec; DBSCAN yields one per candidate `eps` (the paper tunes
    /// eps against the ground truth and reports the best score).
    pub fn candidate_specs(&self, options: &RunOptions) -> Vec<AlgorithmSpec> {
        let base = AlgorithmSpec::new(self.registry_key());
        match self {
            Algorithm::AdaWave => vec![base.with("scale", options.adawave_scale)],
            Algorithm::SkinnyDip | Algorithm::DipMeans => {
                vec![base.with("seed", options.seed)]
            }
            Algorithm::Dbscan => (1..=20)
                .map(|i| {
                    base.clone()
                        .with("eps", i as f64 * 0.01)
                        .with("min-points", 8)
                })
                .collect(),
            Algorithm::Em | Algorithm::KMeans | Algorithm::Stsc | Algorithm::Ric => {
                vec![base.with("k", options.true_k).with("seed", options.seed)]
            }
            Algorithm::WaveCluster => vec![base],
        }
    }
}

/// Result of running one algorithm on one dataset.
#[derive(Debug, Clone)]
pub struct AlgoOutcome {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Predicted labels (noise mapped to [`NOISE_LABEL`]).
    pub labels: Vec<usize>,
    /// Number of clusters found (noise excluded).
    pub clusters: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl AlgoOutcome {
    /// AMI against ground truth over all points.
    pub fn ami(&self, truth: &[usize]) -> f64 {
        ami(truth, &self.labels)
    }

    /// AMI restricted to points whose ground truth is not `noise_label`
    /// (the paper's synthetic-data protocol).
    pub fn ami_ignoring_noise(&self, truth: &[usize], noise_label: usize) -> f64 {
        ami_ignoring_noise(truth, &self.labels, noise_label)
    }
}

/// Options controlling how algorithms are parameterized for a dataset.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The "correct" number of clusters, given to k-means/EM/STSC (the
    /// paper's protocol).
    pub true_k: usize,
    /// Ground-truth labels used only for DBSCAN's best-eps selection
    /// (mirroring the paper: "reporting the best AMI result from these
    /// parameter combinations").
    pub truth_for_tuning: Vec<usize>,
    /// Which label in `truth_for_tuning` is noise (excluded from tuning AMI).
    pub tuning_noise_label: Option<usize>,
    /// Reassign detected noise to the nearest cluster centroid before
    /// scoring (the paper's protocol for the Table I datasets).
    pub reassign_noise: bool,
    /// Seed forwarded to randomized algorithms.
    pub seed: u64,
    /// AdaWave grid scale (the paper's default is 128).
    pub adawave_scale: u32,
}

impl RunOptions {
    /// Sensible defaults for a synthetic dataset with known k.
    pub fn new(true_k: usize, truth: &[usize], noise_label: Option<usize>) -> Self {
        Self {
            true_k,
            truth_for_tuning: truth.to_vec(),
            tuning_noise_label: noise_label,
            reassign_noise: false,
            seed: 7,
            adawave_scale: 128,
        }
    }
}

fn tuning_score(truth: &[usize], labels: &[usize], noise_label: Option<usize>) -> f64 {
    match noise_label {
        Some(n) => ami_ignoring_noise(truth, labels, n),
        None => ami(truth, labels),
    }
}

/// Run one algorithm through `registry`, timing it and normalizing its
/// output. With several candidate specs (DBSCAN's eps sweep) the best
/// tuning-scored clustering is kept, as in the paper's protocol.
pub fn run_algorithm_with(
    registry: &AlgorithmRegistry,
    algorithm: Algorithm,
    points: PointsView<'_>,
    options: &RunOptions,
) -> AlgoOutcome {
    let start = Instant::now();
    let mut best: Option<(Clustering, f64)> = None;
    let candidates = algorithm.candidate_specs(options);
    let tuned = candidates.len() > 1;
    for spec in &candidates {
        let clustering = registry
            .fit(spec, points)
            .unwrap_or_else(|e| panic!("{spec} run: {e}"));
        let score = if tuned {
            tuning_score(
                &options.truth_for_tuning,
                &clustering.to_labels(NOISE_LABEL),
                options.tuning_noise_label,
            )
        } else {
            0.0
        };
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((clustering, score));
        }
    }
    let (clustering, _) = best.expect("at least one candidate spec");
    let clusters = clustering.cluster_count();
    let labels = if options.reassign_noise {
        clustering
            .assign_noise_to_nearest_centroid(points)
            .to_labels(NOISE_LABEL)
    } else {
        clustering.to_labels(NOISE_LABEL)
    };
    AlgoOutcome {
        algorithm,
        labels,
        clusters,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// [`run_algorithm_with`] against the standard registry.
pub fn run_algorithm(
    algorithm: Algorithm,
    points: PointsView<'_>,
    options: &RunOptions,
) -> AlgoOutcome {
    run_algorithm_with(&standard_registry(), algorithm, points, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_data::synthetic::synthetic_benchmark;

    #[test]
    fn names_are_paper_names() {
        assert_eq!(Algorithm::AdaWave.name(), "AdaWave");
        assert_eq!(Algorithm::DipMeans.name(), "DipMean");
        assert_eq!(Algorithm::FIG8.len(), 6);
        assert_eq!(Algorithm::TABLE1.len(), 8);
        assert_eq!(Algorithm::FIG10.len(), 5);
    }

    #[test]
    fn every_algorithm_resolves_through_the_registry() {
        let registry = standard_registry();
        let options = RunOptions::new(3, &[0, 0, 1], None);
        for algorithm in Algorithm::TABLE1
            .iter()
            .chain([Algorithm::WaveCluster].iter())
        {
            for spec in algorithm.candidate_specs(&options) {
                registry
                    .resolve(&spec)
                    .unwrap_or_else(|e| panic!("{spec}: {e}"));
            }
        }
    }

    #[test]
    fn dbscan_protocol_sweeps_twenty_eps_candidates() {
        let options = RunOptions::new(3, &[0, 0, 1], None);
        let specs = Algorithm::Dbscan.candidate_specs(&options);
        assert_eq!(specs.len(), 20);
        assert!(specs.iter().all(|s| s.name == "dbscan"));
        assert_eq!(specs[0].params.get("eps"), Some("0.01"));
        assert_eq!(specs[19].params.get("eps"), Some("0.2"));
    }

    #[test]
    fn adawave_and_kmeans_run_through_the_uniform_interface() {
        let ds = synthetic_benchmark(50.0, 150, 1);
        let options = RunOptions {
            adawave_scale: 64,
            ..RunOptions::new(5, &ds.labels, ds.noise_label)
        };
        for algo in [Algorithm::AdaWave, Algorithm::KMeans] {
            let outcome = run_algorithm(algo, ds.view(), &options);
            assert_eq!(outcome.labels.len(), ds.len());
            assert!(outcome.seconds >= 0.0);
            assert!(outcome.clusters >= 1);
            let score = outcome.ami_ignoring_noise(&ds.labels, 5);
            assert!((-0.1..=1.0).contains(&score));
        }
    }
}
