//! A uniform interface over AdaWave and every baseline, so experiments can
//! sweep algorithms the same way the paper's tables do.

use std::time::Instant;

use adawave_baselines::{
    dbscan::dbscan_best_eps, dipmeans, em, kmeans, ric, self_tuning_spectral, skinnydip,
    wavecluster, DipMeansConfig, EmConfig, KMeansConfig, RicConfig, SkinnyDipConfig,
    SpectralConfig, WaveClusterConfig,
};
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_metrics::{ami, ami_ignoring_noise, NOISE_LABEL};

/// The algorithms compared in the paper's evaluation (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// AdaWave (this paper).
    AdaWave,
    /// SkinnyDip (Maurus & Plant 2016).
    SkinnyDip,
    /// DBSCAN with the paper's automation protocol (minPts = 8, best eps).
    Dbscan,
    /// Full-covariance Gaussian mixture fitted with EM.
    Em,
    /// k-means with the correct k.
    KMeans,
    /// Self-tuning spectral clustering.
    Stsc,
    /// DipMeans.
    DipMeans,
    /// Simplified robust information-theoretic clustering.
    Ric,
    /// The original WaveCluster (dense grid, fixed threshold).
    WaveCluster,
}

impl Algorithm {
    /// The algorithms of Fig. 8 (synthetic noise sweep).
    pub const FIG8: [Algorithm; 6] = [
        Algorithm::AdaWave,
        Algorithm::SkinnyDip,
        Algorithm::Dbscan,
        Algorithm::Em,
        Algorithm::KMeans,
        Algorithm::WaveCluster,
    ];

    /// The algorithms of Table I (real-world datasets).
    pub const TABLE1: [Algorithm; 8] = [
        Algorithm::AdaWave,
        Algorithm::SkinnyDip,
        Algorithm::Dbscan,
        Algorithm::Em,
        Algorithm::KMeans,
        Algorithm::Stsc,
        Algorithm::DipMeans,
        Algorithm::Ric,
    ];

    /// The algorithms of the runtime comparison (Fig. 10).
    pub const FIG10: [Algorithm; 5] = [
        Algorithm::AdaWave,
        Algorithm::SkinnyDip,
        Algorithm::Dbscan,
        Algorithm::KMeans,
        Algorithm::Em,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::AdaWave => "AdaWave",
            Algorithm::SkinnyDip => "SkinnyDip",
            Algorithm::Dbscan => "DBSCAN",
            Algorithm::Em => "EM",
            Algorithm::KMeans => "k-means",
            Algorithm::Stsc => "STSC",
            Algorithm::DipMeans => "DipMean",
            Algorithm::Ric => "RIC",
            Algorithm::WaveCluster => "WaveCluster",
        }
    }
}

/// Result of running one algorithm on one dataset.
#[derive(Debug, Clone)]
pub struct AlgoOutcome {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Predicted labels (noise mapped to [`NOISE_LABEL`]).
    pub labels: Vec<usize>,
    /// Number of clusters found (noise excluded).
    pub clusters: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl AlgoOutcome {
    /// AMI against ground truth over all points.
    pub fn ami(&self, truth: &[usize]) -> f64 {
        ami(truth, &self.labels)
    }

    /// AMI restricted to points whose ground truth is not `noise_label`
    /// (the paper's synthetic-data protocol).
    pub fn ami_ignoring_noise(&self, truth: &[usize], noise_label: usize) -> f64 {
        ami_ignoring_noise(truth, &self.labels, noise_label)
    }
}

/// Options controlling how algorithms are parameterized for a dataset.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The "correct" number of clusters, given to k-means/EM/STSC (the
    /// paper's protocol).
    pub true_k: usize,
    /// Ground-truth labels used only for DBSCAN's best-eps selection
    /// (mirroring the paper: "reporting the best AMI result from these
    /// parameter combinations").
    pub truth_for_tuning: Vec<usize>,
    /// Which label in `truth_for_tuning` is noise (excluded from tuning AMI).
    pub tuning_noise_label: Option<usize>,
    /// Reassign detected noise to the nearest cluster centroid before
    /// scoring (the paper's protocol for the Table I datasets).
    pub reassign_noise: bool,
    /// Seed forwarded to randomized algorithms.
    pub seed: u64,
    /// AdaWave grid scale (the paper's default is 128).
    pub adawave_scale: u32,
}

impl RunOptions {
    /// Sensible defaults for a synthetic dataset with known k.
    pub fn new(true_k: usize, truth: &[usize], noise_label: Option<usize>) -> Self {
        Self {
            true_k,
            truth_for_tuning: truth.to_vec(),
            tuning_noise_label: noise_label,
            reassign_noise: false,
            seed: 7,
            adawave_scale: 128,
        }
    }
}

fn tuning_score(truth: &[usize], labels: &[usize], noise_label: Option<usize>) -> f64 {
    match noise_label {
        Some(n) => ami_ignoring_noise(truth, labels, n),
        None => ami(truth, labels),
    }
}

/// Run one algorithm on a point set, timing it and normalizing its output.
pub fn run_algorithm(
    algorithm: Algorithm,
    points: &[Vec<f64>],
    options: &RunOptions,
) -> AlgoOutcome {
    let start = Instant::now();
    let (labels, clusters) = match algorithm {
        Algorithm::AdaWave => {
            let config = AdaWaveConfig::builder()
                .scale(options.adawave_scale)
                .build();
            let result = AdaWave::new(config).fit(points).expect("adawave run");
            let labels = if options.reassign_noise {
                result.assign_noise_to_nearest_centroid(points)
            } else {
                result.to_labels(NOISE_LABEL)
            };
            (labels, result.cluster_count())
        }
        Algorithm::SkinnyDip => {
            let config = SkinnyDipConfig {
                seed: options.seed,
                ..Default::default()
            };
            let clustering = skinnydip(points, &config);
            let clusters = clustering.cluster_count();
            let labels = if options.reassign_noise {
                clustering
                    .assign_noise_to_nearest_centroid(points)
                    .to_labels(NOISE_LABEL)
            } else {
                clustering.to_labels(NOISE_LABEL)
            };
            (labels, clusters)
        }
        Algorithm::Dbscan => {
            let eps_values: Vec<f64> = (1..=20).map(|i| i as f64 * 0.01).collect();
            let truth = options.truth_for_tuning.clone();
            let noise = options.tuning_noise_label;
            let (clustering, _) = dbscan_best_eps(points, &eps_values, 8, |c| {
                tuning_score(&truth, &c.to_labels(NOISE_LABEL), noise)
            });
            let clusters = clustering.cluster_count();
            let labels = if options.reassign_noise {
                clustering
                    .assign_noise_to_nearest_centroid(points)
                    .to_labels(NOISE_LABEL)
            } else {
                clustering.to_labels(NOISE_LABEL)
            };
            (labels, clusters)
        }
        Algorithm::Em => {
            let (_, clustering) = em(points, &EmConfig::new(options.true_k, options.seed));
            (clustering.to_labels(NOISE_LABEL), clustering.cluster_count())
        }
        Algorithm::KMeans => {
            let result = kmeans(points, &KMeansConfig::new(options.true_k, options.seed));
            (
                result.clustering.to_labels(NOISE_LABEL),
                result.clustering.cluster_count(),
            )
        }
        Algorithm::Stsc => {
            let config = SpectralConfig {
                k: Some(options.true_k),
                seed: options.seed,
                ..Default::default()
            };
            let clustering = self_tuning_spectral(points, &config);
            (clustering.to_labels(NOISE_LABEL), clustering.cluster_count())
        }
        Algorithm::DipMeans => {
            let config = DipMeansConfig {
                seed: options.seed,
                ..Default::default()
            };
            let clustering = dipmeans(points, &config);
            (clustering.to_labels(NOISE_LABEL), clustering.cluster_count())
        }
        Algorithm::Ric => {
            let config = RicConfig::new(options.true_k.max(2) * 2, options.seed);
            let clustering = ric(points, &config);
            let clusters = clustering.cluster_count();
            let labels = if options.reassign_noise {
                clustering
                    .assign_noise_to_nearest_centroid(points)
                    .to_labels(NOISE_LABEL)
            } else {
                clustering.to_labels(NOISE_LABEL)
            };
            (labels, clusters)
        }
        Algorithm::WaveCluster => {
            let clustering = wavecluster(points, &WaveClusterConfig::default());
            let clusters = clustering.cluster_count();
            let labels = if options.reassign_noise {
                clustering
                    .assign_noise_to_nearest_centroid(points)
                    .to_labels(NOISE_LABEL)
            } else {
                clustering.to_labels(NOISE_LABEL)
            };
            (labels, clusters)
        }
    };
    AlgoOutcome {
        algorithm,
        labels,
        clusters,
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_data::synthetic::synthetic_benchmark;

    #[test]
    fn names_are_paper_names() {
        assert_eq!(Algorithm::AdaWave.name(), "AdaWave");
        assert_eq!(Algorithm::DipMeans.name(), "DipMean");
        assert_eq!(Algorithm::FIG8.len(), 6);
        assert_eq!(Algorithm::TABLE1.len(), 8);
        assert_eq!(Algorithm::FIG10.len(), 5);
    }

    #[test]
    fn adawave_and_kmeans_run_through_the_uniform_interface() {
        let ds = synthetic_benchmark(50.0, 150, 1);
        let options = RunOptions {
            adawave_scale: 64,
            ..RunOptions::new(5, &ds.labels, ds.noise_label)
        };
        for algo in [Algorithm::AdaWave, Algorithm::KMeans] {
            let outcome = run_algorithm(algo, &ds.points, &options);
            assert_eq!(outcome.labels.len(), ds.len());
            assert!(outcome.seconds >= 0.0);
            assert!(outcome.clusters >= 1);
            let score = outcome.ami_ignoring_noise(&ds.labels, 5);
            assert!((-0.1..=1.0).contains(&score));
        }
    }
}
