//! Serving-path microbenchmark: what the fit/predict split buys.
//!
//! Trains the two persistable models on the 100k-point synthetic workload
//! and measures the *serving* side — the paper's per-point labeling step,
//! detached from training:
//!
//! * **batch predict throughput** — `Model::predict` over the full
//!   workload (points/second), and
//! * **single-point latency** — `Model::predict_one` per call, the number
//!   a request-per-query service sees.
//!
//! AdaWave serves by grid-cell hash lookup (O(1) per point, independent
//! of n and of the cluster count); k-means scans its k centroids per
//! point. Label parity of `predict` against the training fit is asserted
//! in-process before anything is timed.
//!
//! Run with `cargo run --release -p adawave-bench --bin predict_bench`
//! (writes `BENCH_predict.json` into the current directory); pass
//! `--smoke` for a seconds-long variant driving the same code paths.

use std::time::Instant;

use adawave::{standard_registry, AlgorithmSpec, Model};
use adawave_bench::report::format_table;
use adawave_data::synthetic::synthetic_benchmark;

const REPEATS: usize = 7;

/// Best-of-`repeats` wall-clock seconds of `f`, with a sink guard so the
/// optimizer cannot delete the work.
fn best_of<F: FnMut() -> usize>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::MAX;
    let mut sink = 0usize;
    for _ in 0..repeats {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(sink < usize::MAX);
    best
}

struct Row {
    algorithm: &'static str,
    rule: &'static str,
    fit_seconds: f64,
    batch_seconds: f64,
    batch_points_per_second: f64,
    single_point_nanos: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (per_cluster, repeats) = if smoke { (250, 2) } else { (5_000, REPEATS) };
    // 5 clusters x per_cluster points + 75% noise (100_000 points in the
    // full run — the workload of the other BENCH_*.json files).
    let ds = synthetic_benchmark(75.0, per_cluster, 42);
    let points = ds.view();
    let n = points.len();
    let single_queries = n.min(20_000);

    let registry = standard_registry();
    let specs = [
        (
            "adawave",
            "grid-cell hash lookup",
            AlgorithmSpec::new("adawave"),
        ),
        (
            "kmeans",
            "nearest-centroid scan (k=5)",
            AlgorithmSpec::new("kmeans").with("k", 5).with("seed", 7),
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (algorithm, rule, spec) in specs {
        let fit_start = Instant::now();
        let outcome = registry.fit_model(&spec, points).expect(algorithm);
        let fit_seconds = fit_start.elapsed().as_secs_f64();
        // Parity gate: the numbers below only count if serving reproduces
        // the training labels exactly.
        assert_eq!(
            outcome.model.predict(points).expect(algorithm),
            outcome.clustering,
            "{algorithm}: predict diverged from fit"
        );
        let model: &dyn Model = outcome.model.as_ref();

        let batch_seconds = best_of(repeats, || {
            model.predict(points).expect(algorithm).cluster_count()
        });
        let single_seconds = best_of(repeats, || {
            let mut assigned = 0usize;
            for i in 0..single_queries {
                if model.predict_one(points.row(i)).is_some() {
                    assigned += 1;
                }
            }
            assigned
        });
        rows.push(Row {
            algorithm,
            rule,
            fit_seconds,
            batch_seconds,
            batch_points_per_second: n as f64 / batch_seconds,
            single_point_nanos: single_seconds * 1e9 / single_queries as f64,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.rule.to_string(),
                format!("{:.3}", r.fit_seconds),
                format!("{:.3}", r.batch_seconds),
                format!("{:.0}", r.batch_points_per_second),
                format!("{:.0}", r.single_point_nanos),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "model",
                "serving rule",
                "fit (s)",
                "batch predict (s)",
                "points/s",
                "predict_one (ns)"
            ],
            &table,
        )
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"points\": {n}, \"dims\": {}, \"noise_percent\": 75.0, \"seed\": 42, \"single_point_queries\": {single_queries}, \"repeats\": {repeats}, \"timing\": \"best-of\", \"smoke\": {smoke} }},\n",
        points.dims(),
    ));
    json.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_cpus}, \"note\": \"same single-core container caveat as the other BENCH_*.json files; prediction itself is sequential, so these numbers are thread-count independent\" }},\n",
    ));
    json.push_str("  \"claim\": \"the fit/predict split serves out-of-sample points without refitting: AdaWave predicts by grid-cell hash lookup (cost independent of n), kmeans by a k-row centroid scan; both models reproduce their training labels exactly (asserted in-process before timing)\",\n");
    json.push_str("  \"models\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"algorithm\": \"{}\", \"serving_rule\": \"{}\", \"fit_seconds\": {:.6}, \"batch_predict_seconds\": {:.6}, \"batch_points_per_second\": {:.0}, \"single_point_latency_nanos\": {:.0} }}{}\n",
            r.algorithm,
            r.rule,
            r.fit_seconds,
            r.batch_seconds,
            r.batch_points_per_second,
            r.single_point_nanos,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_predict.json", &json).expect("write BENCH_predict.json");
    println!("wrote BENCH_predict.json (host cores: {host_cpus})");
}
