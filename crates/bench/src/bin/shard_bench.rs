//! Distributed-ingestion microbenchmark: what the versioned accumulator
//! artifacts cost, measured.
//!
//! The benchmark ingests the 100k-point synthetic workload at several
//! grid scales (so the occupied-cell count `m` — the payload size driver
//! — spans two orders of magnitude) and, at each scale, times
//!
//! * `snapshot` — serializing the accumulator payload to its versioned
//!   hex-float text form,
//! * `restore` — parsing that payload back into a live session, and
//! * `merge` — folding a restored half-shard into the other half,
//!
//! reporting each as cells/second. A fourth series measures the
//! *checkpoint overhead per ingested row*: the same batched ingest with
//! a [`Checkpointer`] flushing every N rows versus no checkpointing at
//! all, on the default scale.
//!
//! Parity is asserted in-process before anything is timed: the restored
//! session's refit and the two merged half-shards' refit must equal the
//! one-shot fit label for label, so the numbers cannot be produced by a
//! serializer that drifted.
//!
//! Run with `cargo run --release -p adawave-bench --bin shard_bench`
//! (writes `BENCH_shard.json` into the current directory); pass
//! `--smoke` for the seconds-long CI variant.

use std::time::Instant;

use adawave_api::PointsView;
use adawave_bench::report::format_table;
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::synthetic::synthetic_benchmark;
use adawave_grid::BoundingBox;
use adawave_stream::{Checkpointer, StreamingAdaWave};

const SCALES: &[u32] = &[16, 32, 64, 128];
const BATCH_ROWS: usize = 8_192;

/// Best-of-`repeats` wall-clock seconds of `f`, with a sink guard so the
/// optimizer cannot delete the work.
fn best_of<F: FnMut() -> usize>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::MAX;
    let mut sink = 0usize;
    for _ in 0..repeats {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(sink != usize::MAX);
    best
}

/// Ingest `points` in fixed batches into a fresh session over `domain`,
/// checkpointing every `every` rows when a path is given. Returns the
/// wall-clock seconds of the whole ingest.
fn timed_ingest(
    config: &AdaWaveConfig,
    domain: &BoundingBox,
    points: PointsView<'_>,
    checkpoint: Option<(&std::path::Path, usize)>,
) -> f64 {
    let dims = points.dims();
    let flat = points.as_slice();
    let n = points.len();
    let mut stream = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
    let mut checkpointer = checkpoint.map(|(path, every)| Checkpointer::new(path, every));
    let start = Instant::now();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + BATCH_ROWS).min(n);
        let batch = PointsView::from_flat(&flat[lo * dims..hi * dims], dims).unwrap();
        let report = stream.ingest(batch).unwrap();
        if let Some(c) = checkpointer.as_mut() {
            c.observe(&stream, report.points).unwrap();
        }
        lo = hi;
    }
    if let Some(c) = checkpointer.as_mut() {
        c.flush(&stream).unwrap();
    }
    start.elapsed().as_secs_f64()
}

struct Row {
    scale: u32,
    cells: usize,
    payload_bytes: usize,
    snapshot_seconds: f64,
    restore_seconds: f64,
    merge_seconds: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (per_cluster, repeats) = if smoke { (250, 2) } else { (5_000, 5) };
    // The workload of the other BENCH files: 5 clusters + 75% noise.
    let ds = synthetic_benchmark(75.0, per_cluster, 42);
    let points = ds.view();
    let dims = points.dims();
    let total = points.len();
    let domain = BoundingBox::from_points(points).unwrap();
    let split = total / 2;

    let mut rows: Vec<Row> = Vec::with_capacity(SCALES.len());
    for &scale in SCALES {
        let config = AdaWaveConfig::builder().scale(scale).build();
        let mut whole = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        whole.ingest(points).unwrap();
        let cells = whole.occupied_cells();

        // Two half-shards over the same frozen domain, for the merge
        // timing and the shard-parity assertion.
        let left_rows = PointsView::from_flat(&points.as_slice()[..split * dims], dims).unwrap();
        let right_rows = PointsView::from_flat(&points.as_slice()[split * dims..], dims).unwrap();
        let mut left = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        left.ingest(left_rows).unwrap();
        let mut right = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        right.ingest(right_rows).unwrap();

        // Parity gate: round-trip and two-shard merge must both refit to
        // the one-shot fit, label for label, before anything is timed.
        let fitted = AdaWave::new(config.clone()).fit(points).unwrap();
        let payload = whole.snapshot();
        let restored = StreamingAdaWave::restore(&payload).unwrap();
        assert_eq!(
            restored.refit().unwrap(),
            fitted,
            "restored refit diverged from one-shot fit at scale {scale}"
        );
        let mut merged = StreamingAdaWave::restore(&left.snapshot()).unwrap();
        merged
            .merge(StreamingAdaWave::restore(&right.snapshot()).unwrap())
            .unwrap();
        assert_eq!(
            merged.refit().unwrap(),
            fitted,
            "two-shard merge diverged from one-shot fit at scale {scale}"
        );

        let snapshot_seconds = best_of(repeats, || whole.snapshot().len());
        let restore_seconds = best_of(repeats, || {
            StreamingAdaWave::restore(&payload)
                .unwrap()
                .occupied_cells()
        });
        let left_payload = left.snapshot();
        let right_payload = right.snapshot();
        // The merge consumes its argument, so each repetition rebuilds
        // the operands from their payloads outside the timed region.
        let mut merge_seconds = f64::MAX;
        let mut sink = 0usize;
        for _ in 0..repeats {
            let mut base = StreamingAdaWave::restore(&left_payload).unwrap();
            let other = StreamingAdaWave::restore(&right_payload).unwrap();
            let start = Instant::now();
            base.merge(other).unwrap();
            merge_seconds = merge_seconds.min(start.elapsed().as_secs_f64());
            sink = sink.wrapping_add(base.occupied_cells());
        }
        assert!(sink != usize::MAX);

        rows.push(Row {
            scale,
            cells,
            payload_bytes: payload.len(),
            snapshot_seconds,
            restore_seconds,
            merge_seconds,
        });
    }

    // Checkpoint overhead per row, on the default scale: batched ingest
    // with an every-N checkpointer vs the same ingest without one.
    let config = AdaWaveConfig::default();
    let every = if smoke { 1_000 } else { 10_000 };
    let ckpt_path =
        std::env::temp_dir().join(format!("adawave_shard_bench_{}.awa", std::process::id()));
    let mut plain_seconds = f64::MAX;
    let mut checkpointed_seconds = f64::MAX;
    for _ in 0..repeats {
        plain_seconds = plain_seconds.min(timed_ingest(&config, &domain, points, None));
        checkpointed_seconds = checkpointed_seconds.min(timed_ingest(
            &config,
            &domain,
            points,
            Some((&ckpt_path, every)),
        ));
    }
    std::fs::remove_file(&ckpt_path).ok();
    let overhead_per_row = (checkpointed_seconds - plain_seconds).max(0.0) / total as f64;

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scale.to_string(),
                r.cells.to_string(),
                r.payload_bytes.to_string(),
                format!("{:.0}", r.cells as f64 / r.snapshot_seconds),
                format!("{:.0}", r.cells as f64 / r.restore_seconds),
                format!("{:.0}", r.cells as f64 / r.merge_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "scale",
                "occupied cells m",
                "payload bytes",
                "snapshot cells/s",
                "restore cells/s",
                "merge cells/s",
            ],
            &table,
        )
    );
    println!(
        "checkpoint every {every} rows: {:.1} ns/row overhead ({:.3}s vs {:.3}s over {total} rows)",
        overhead_per_row * 1e9,
        checkpointed_seconds,
        plain_seconds,
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"points\": {total}, \"dims\": {dims}, \"noise_percent\": 75.0, \"seed\": 42, \"batch_rows\": {BATCH_ROWS}, \"repeats\": {repeats}, \"timing\": \"best-of\", \"smoke\": {smoke} }},\n",
    ));
    json.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_cpus}, \"note\": \"same single-core container caveat as BENCH_parallel.json: these are single-process serialization/merge costs; the distributed win (k shard processes ingesting concurrently) cannot show a wall-clock speedup on a one-core host\" }},\n",
    ));
    json.push_str("  \"claim\": \"accumulator artifacts cost O(m) to snapshot, restore and merge for m occupied cells (plus the per-point cell-key table), independent of how many points were ingested; checkpointing adds a bounded per-row overhead amortized over the flush interval\",\n");
    json.push_str("  \"parity\": \"asserted in-process before timing at every scale: snapshot->restore->refit and half-shard snapshot->restore->merge->refit both equal the one-shot AdaWave::fit labels exactly\",\n");
    json.push_str("  \"scales\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"scale\": {}, \"occupied_cells_m\": {}, \"payload_bytes\": {}, \"snapshot_seconds\": {:.6}, \"restore_seconds\": {:.6}, \"merge_seconds\": {:.6} }}{}\n",
            r.scale,
            r.cells,
            r.payload_bytes,
            r.snapshot_seconds,
            r.restore_seconds,
            r.merge_seconds,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"checkpoint\": {{ \"every_rows\": {every}, \"plain_ingest_seconds\": {plain_seconds:.6}, \"checkpointed_ingest_seconds\": {checkpointed_seconds:.6}, \"overhead_ns_per_row\": {:.1} }}\n",
        overhead_per_row * 1e9,
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json (host cores: {host_cpus})");
}
