//! Streaming-refit microbenchmark: the `O(m)` claim of the
//! `adawave-stream` layer, measured.
//!
//! The benchmark ingests growing prefixes of a 100k-point synthetic
//! workload (10 sizes) into a [`StreamingAdaWave`] accumulator and, at
//! each size, times
//!
//! * `refit_model` — the grid-only transform → threshold → components
//!   stage, whose cost is governed by the number of occupied cells `m`,
//! * `refit` — model plus the per-point labeling walk (`O(n)` table
//!   lookups), and
//! * the full one-shot [`AdaWave::fit`] on the same prefix, which has to
//!   re-quantize every point (`O(n + m)`).
//!
//! Because the domain is bounded and the scale fixed, `m` saturates as
//! `n` grows 10×: the recorded numbers show `refit_model` tracking `m`,
//! not `n`, while the full fit keeps growing with `n`. Label-identity of
//! `refit()` against the one-shot fit is asserted in the same process at
//! every size.
//!
//! Run with `cargo run --release -p adawave-bench --bin stream_bench`
//! (writes `BENCH_stream.json` into the current directory); pass
//! `--smoke` for the seconds-long CI variant that exercises the same
//! code paths on a small workload.

use std::time::Instant;

use adawave_api::PointsView;
use adawave_bench::report::format_table;
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::synthetic::synthetic_benchmark;
use adawave_grid::BoundingBox;
use adawave_stream::StreamingAdaWave;

const SIZES: usize = 10;
const BATCH_ROWS: usize = 8_192;

/// Best-of-`repeats` wall-clock seconds of `f`, with a sink guard so the
/// optimizer cannot delete the work.
fn best_of<F: FnMut() -> f64>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::MAX;
    let mut sink = 0.0;
    for _ in 0..repeats {
        let start = Instant::now();
        sink += f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(sink.is_finite());
    best
}

struct Row {
    n: usize,
    m: usize,
    refit_model_seconds: f64,
    refit_seconds: f64,
    full_fit_seconds: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (per_cluster, repeats) = if smoke { (250, 2) } else { (5_000, 5) };
    // 5 clusters x per_cluster points + 75% noise (100_000 points in the
    // full run — the workload of BENCH_layout.json / BENCH_parallel.json).
    let ds = synthetic_benchmark(75.0, per_cluster, 42);
    let points = ds.view();
    let dims = points.dims();
    let total = points.len();
    let config = AdaWaveConfig::default();

    let mut rows: Vec<Row> = Vec::with_capacity(SIZES);
    for step in 1..=SIZES {
        let n = total * step / SIZES;
        let prefix = PointsView::from_flat(&points.as_slice()[..n * dims], dims).unwrap();

        // Stream the prefix in fixed batches against its exact domain (the
        // same domain fit() derives), so refit labels must match fit
        // labels exactly.
        let domain = BoundingBox::from_points(prefix).unwrap();
        let mut stream = StreamingAdaWave::with_domain(config.clone(), domain).unwrap();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + BATCH_ROWS).min(n);
            let batch =
                PointsView::from_flat(&prefix.as_slice()[lo * dims..hi * dims], dims).unwrap();
            stream.ingest(batch).unwrap();
            lo = hi;
        }

        let adawave = AdaWave::new(config.clone());
        let fitted = adawave.fit(prefix).unwrap();
        assert_eq!(
            stream.refit().unwrap(),
            fitted,
            "streamed refit diverged from one-shot fit at n = {n}"
        );

        let refit_model_seconds =
            best_of(repeats, || stream.refit_model().unwrap().stats().threshold);
        let refit_seconds = best_of(repeats, || stream.refit().unwrap().noise_fraction());
        let full_fit_seconds = best_of(repeats, || adawave.fit(prefix).unwrap().noise_fraction());
        rows.push(Row {
            n,
            m: stream.occupied_cells(),
            refit_model_seconds,
            refit_seconds,
            full_fit_seconds,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.m.to_string(),
                format!("{:.6}", r.refit_model_seconds),
                format!("{:.6}", r.refit_seconds),
                format!("{:.6}", r.full_fit_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "points n",
                "occupied cells m",
                "refit_model (s)",
                "refit+labels (s)",
                "full fit (s)"
            ],
            &table,
        )
    );
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    println!(
        "n grew {:.1}x, m grew {:.1}x; refit_model grew {:.1}x, full fit grew {:.1}x",
        last.n as f64 / first.n as f64,
        last.m as f64 / first.m as f64,
        last.refit_model_seconds / first.refit_model_seconds,
        last.full_fit_seconds / first.full_fit_seconds,
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"points\": {total}, \"dims\": {dims}, \"noise_percent\": 75.0, \"seed\": 42, \"scale\": {}, \"batch_rows\": {BATCH_ROWS}, \"repeats\": {repeats}, \"timing\": \"best-of\", \"smoke\": {smoke} }},\n",
        config.scale,
    ));
    json.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_cpus}, \"note\": \"same single-core container caveat as BENCH_parallel.json: ingest parallelism cannot show speedup on a one-core host; the refit-vs-fit scaling below is thread-count independent\" }},\n",
    ));
    json.push_str("  \"claim\": \"refit_model re-runs transform->threshold->components on the accumulated grid: its cost tracks the occupied cells m (which saturates on a bounded domain), not the total ingested points n; the full fit must re-quantize all n points. refit additionally pays an O(n) per-point label lookup.\",\n");
    json.push_str("  \"determinism\": \"asserted in-process at every size: refit() labels, stats and density curve are identical to AdaWave::fit on the same prefix and domain\",\n");
    json.push_str("  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"n\": {}, \"occupied_cells_m\": {}, \"refit_model_seconds\": {:.6}, \"refit_with_labels_seconds\": {:.6}, \"full_fit_seconds\": {:.6} }}{}\n",
            r.n,
            r.m,
            r.refit_model_seconds,
            r.refit_seconds,
            r.full_fit_seconds,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"scaling_first_to_last\": {{ \"n_growth\": {:.2}, \"m_growth\": {:.2}, \"refit_model_growth\": {:.2}, \"full_fit_growth\": {:.2} }}\n",
        last.n as f64 / first.n as f64,
        last.m as f64 / first.m as f64,
        last.refit_model_seconds / first.refit_model_seconds,
        last.full_fit_seconds / first.full_fit_seconds,
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    println!("wrote BENCH_stream.json (host cores: {host_cpus})");
}
