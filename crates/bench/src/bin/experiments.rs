//! Command-line runner that regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! cargo run -p adawave-bench --release --bin experiments -- all
//! cargo run -p adawave-bench --release --bin experiments -- fig8 --full
//! ```
//!
//! Without `--full`, each experiment runs on a reduced copy of the paper's
//! workload (same structure, fewer points) so the whole suite finishes in a
//! few minutes on a laptop; `--full` uses the paper's sizes.

use adawave_bench::experiments::{
    self, print_ablation, print_fig10, print_fig2, print_fig5, print_fig6, print_fig7, print_fig8,
    print_fig9, print_table1, print_table2,
};
use adawave_data::uci::ROADMAP_FULL_SIZE;

const SEED: u64 = 20190407; // ICDE 2019 week, for flavour; any seed works.

struct Scale {
    fig2_points: usize,
    fig8_points: usize,
    fig8_noise: Vec<f64>,
    fig10_points: Vec<usize>,
    roadmap_n: usize,
    table1_cap: usize,
    ablation_points: usize,
}

impl Scale {
    fn quick() -> Self {
        Self {
            fig2_points: 1200,
            fig8_points: 800,
            fig8_noise: vec![20.0, 35.0, 50.0, 65.0, 80.0, 90.0],
            fig10_points: vec![250, 500, 1000, 2000],
            roadmap_n: 60_000,
            table1_cap: 4_000,
            ablation_points: 800,
        }
    }

    fn full() -> Self {
        Self {
            fig2_points: 5600,
            fig8_points: 5600,
            fig8_noise: (4..=18).map(|i| i as f64 * 5.0).collect(),
            fig10_points: vec![1000, 2000, 4000, 8000, 16000],
            roadmap_n: ROADMAP_FULL_SIZE,
            table1_cap: 0,
            ablation_points: 5600,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let run_fig2 = || {
        let rows = experiments::fig2_running_example(scale.fig2_points, SEED);
        print_fig2(&rows);
    };
    let run_fig5 = || {
        let stats = experiments::fig5_transform(scale.fig2_points, SEED);
        print_fig5(&stats);
        println!("subband energy (dense 2-D DWT):");
        for (name, energy) in experiments::fig5_subband_energy(scale.fig2_points, SEED) {
            println!("  {name:<22} {energy:>14.1}");
        }
        println!();
    };
    let run_fig6 = || {
        let data = experiments::fig6_threshold(scale.fig2_points, SEED);
        print_fig6(&data);
    };
    let run_fig7 = || print_fig7(50.0, scale.fig8_points, SEED);
    let run_fig8 = || {
        let rows = experiments::fig8_noise_sweep(scale.fig8_points, &scale.fig8_noise, SEED);
        print_fig8(&rows);
    };
    let run_fig9 = || {
        let result = experiments::fig9_roadmap(scale.roadmap_n, SEED);
        print_fig9(&result);
    };
    let run_fig10 = || {
        let rows = experiments::fig10_runtime(&scale.fig10_points, SEED);
        print_fig10(&rows);
    };
    let run_table1 = || {
        let cells = experiments::table1(SEED, scale.roadmap_n.min(40_000), scale.table1_cap);
        print_table1(&cells);
    };
    let run_table2 = || {
        let corr = experiments::table2_glass(SEED);
        print_table2(&corr);
    };
    let run_ablation = || {
        let rows = experiments::ablation(scale.ablation_points, SEED);
        print_ablation(&rows);
    };

    match which.as_str() {
        "fig2" => run_fig2(),
        "fig5" => run_fig5(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "fig8" => run_fig8(),
        "fig9" => run_fig9(),
        "fig10" => run_fig10(),
        "table1" => run_table1(),
        "table2" => run_table2(),
        "ablation" => run_ablation(),
        "all" => {
            run_fig2();
            run_fig5();
            run_fig6();
            run_fig7();
            run_fig8();
            run_fig9();
            run_fig10();
            run_table1();
            run_table2();
            run_ablation();
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'. Available: fig2 fig5 fig6 fig7 fig8 fig9 fig10 \
                 table1 table2 ablation all  (add --full for the paper-scale workloads)"
            );
            std::process::exit(2);
        }
    }
}
