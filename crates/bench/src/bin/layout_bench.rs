//! Layout microbenchmark: the flat row-major [`PointMatrix`] hot paths
//! against the seed's nested `Vec<Vec<f64>>` layout, on the two kernels the
//! refactor targets — grid quantization and the k-means assignment step —
//! over 100k synthetic points.
//!
//! Run with `cargo run --release -p adawave-bench --bin layout_bench`;
//! writes `BENCH_layout.json` into the current directory and prints the
//! table. The nested variants reimplement the seed's access pattern (one
//! heap allocation + one pointer indirection per point) so the comparison
//! isolates the memory layout, not the algorithm.

use std::time::Instant;

use adawave_api::PointMatrix;
use adawave_bench::report::format_table;
use adawave_data::synthetic::synthetic_benchmark;
use adawave_grid::{Quantizer, SparseGrid};
use adawave_linalg::squared_distance;

const REPEATS: usize = 7;

/// Best-of-`REPEATS` wall-clock seconds of `f`, with a `sink` guard so the
/// optimizer cannot delete the work.
fn best_of<F: FnMut() -> f64>(mut f: F) -> (f64, f64) {
    let mut best = f64::MAX;
    let mut sink = 0.0;
    for _ in 0..REPEATS {
        let start = Instant::now();
        sink += f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, sink)
}

/// The seed's nested quantization loop: one pointer chase per point.
fn quantize_nested(quantizer: &Quantizer, nested: &[Vec<f64>]) -> f64 {
    let mut grid = SparseGrid::with_capacity(1 << 16);
    for p in nested {
        grid.increment(quantizer.cell_key(p));
    }
    grid.total_mass()
}

/// The flat quantization loop: the identical per-point work, walking one
/// contiguous buffer with `chunks_exact` instead of chasing a pointer per
/// point.
fn quantize_flat(quantizer: &Quantizer, points: &PointMatrix) -> f64 {
    let mut grid = SparseGrid::with_capacity(1 << 16);
    for p in points.as_slice().chunks_exact(points.dims()) {
        grid.increment(quantizer.cell_key(p));
    }
    grid.total_mass()
}

/// The seed's k-means assignment step over nested points and nested
/// centroids.
fn assign_nested(nested: &[Vec<f64>], centroids: &[Vec<f64>]) -> f64 {
    let mut inertia = 0.0;
    for p in nested {
        let mut best = f64::MAX;
        for c in centroids {
            let d = squared_distance(p, c);
            if d < best {
                best = d;
            }
        }
        inertia += best;
    }
    inertia
}

/// The flat assignment step: rows and centroids are `chunks_exact` slices
/// of two contiguous buffers.
fn assign_flat(points: &PointMatrix, centroids: &PointMatrix) -> f64 {
    let dims = points.dims();
    let mut inertia = 0.0;
    for p in points.as_slice().chunks_exact(dims) {
        let mut best = f64::MAX;
        for c in centroids.as_slice().chunks_exact(dims) {
            let d = squared_distance(p, c);
            if d < best {
                best = d;
            }
        }
        inertia += best;
    }
    inertia
}

fn main() {
    // 5 clusters x 5000 points + 75% noise = 100_000 points.
    let ds = synthetic_benchmark(75.0, 5_000, 42);
    assert_eq!(ds.len(), 100_000, "workload size changed");
    let mut flat = ds.points.clone();
    let mut nested: Vec<Vec<f64>> = flat.to_rows();

    // Shuffle both layouts with the same permutation, the way every real
    // pipeline touches its data (`Dataset::shuffle`, subsampling, CSV
    // ingestion order). On the nested layout a shuffle swaps the *outer
    // pointers* while the per-point heap blocks keep their original
    // addresses — subsequent passes jump around the heap. The flat matrix
    // swaps the row contents and stays one contiguous buffer.
    let mut rng = adawave_data::Rng::new(7);
    for i in (1..flat.len()).rev() {
        let j = rng.below(i + 1);
        flat.swap_rows(i, j);
        nested.swap(i, j);
    }

    let quantizer = Quantizer::fit(flat.view(), 128).expect("quantize fit");
    let k = 16;
    let centroid_idx: Vec<usize> = (0..k).map(|i| i * (flat.len() / k)).collect();
    let flat_centroids = flat.view().select(&centroid_idx);
    let nested_centroids: Vec<Vec<f64>> = flat_centroids.to_rows();

    let (q_nested, s1) = best_of(|| quantize_nested(&quantizer, &nested));
    let (q_flat, s2) = best_of(|| quantize_flat(&quantizer, &flat));
    let (a_nested, s3) = best_of(|| assign_nested(&nested, &nested_centroids));
    let (a_flat, s4) = best_of(|| assign_flat(&flat, &flat_centroids));
    // Equal work on both layouts, by construction.
    assert_eq!(s1, s2, "quantization paths disagree");
    assert_eq!(s3, s4, "assignment paths disagree");

    let rows = [
        ("quantize_100k", q_nested, q_flat),
        ("kmeans_assign_100k_k16", a_nested, a_flat),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, nested_s, flat_s)| {
            vec![
                name.to_string(),
                format!("{:.6}", nested_s),
                format!("{:.6}", flat_s),
                format!("{:.2}x", nested_s / flat_s),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "kernel",
                "nested Vec<Vec<f64>> (s)",
                "flat PointMatrix (s)",
                "speedup"
            ],
            &table,
        )
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"points\": {}, \"dims\": {}, \"noise_percent\": 75.0, \"seed\": 42, \"repeats\": {}, \"timing\": \"best-of\" }},\n",
        flat.len(),
        flat.dims(),
        REPEATS
    ));
    json.push_str("  \"kernels\": {\n");
    for (i, (name, nested_s, flat_s)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{ \"nested_vec_seconds\": {nested_s:.6}, \"flat_matrix_seconds\": {flat_s:.6}, \"speedup\": {:.3} }}{}\n",
            nested_s / flat_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_layout.json", &json).expect("write BENCH_layout.json");
    println!("wrote BENCH_layout.json");
}
