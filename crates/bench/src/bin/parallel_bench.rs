//! Parallel-runtime microbenchmark: the two hot kernels the
//! `adawave-runtime` layer targets — grid quantization and the k-means
//! assignment/accumulation pass — timed at 1/2/4/8 worker threads over
//! 100k synthetic points, best-of-7.
//!
//! Run with `cargo run --release -p adawave-bench --bin parallel_bench`;
//! writes `BENCH_parallel.json` into the current directory and prints the
//! table. The kernels are the *same code path* at every thread count
//! (fixed chunk boundaries, in-order merges), so besides the timings the
//! binary asserts that every parallel result is identical to the
//! sequential one — the determinism half of the contract is checked in
//! the same process that produces the performance half.

use std::time::Instant;

use adawave_bench::report::format_table;
use adawave_data::synthetic::synthetic_benchmark;
use adawave_grid::Quantizer;
use adawave_linalg::squared_distance;
use adawave_runtime::Runtime;

const REPEATS: usize = 7;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Same fixed chunk the k-means Lloyd kernel uses.
const ROW_CHUNK: usize = 1_024;

/// Best-of-`REPEATS` wall-clock seconds of `f`, with a sink guard so the
/// optimizer cannot delete the work.
fn best_of<F: FnMut() -> f64>(mut f: F) -> (f64, f64) {
    let mut best = f64::MAX;
    let mut sink = 0.0;
    for _ in 0..REPEATS {
        let start = Instant::now();
        sink += f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, sink)
}

fn main() {
    // 5 clusters x 5000 points + 75% noise = 100_000 points (the same
    // workload BENCH_layout.json measures).
    let ds = synthetic_benchmark(75.0, 5_000, 42);
    assert_eq!(ds.len(), 100_000, "workload size changed");
    let points = ds.view();
    let dims = points.dims();

    let quantizer = Quantizer::fit(points, 128).expect("quantizer fit");
    let k = 16;
    let centroid_idx: Vec<usize> = (0..k).map(|i| i * (points.len() / k)).collect();
    let centroids = points.select(&centroid_idx);

    // The k-means assignment/accumulation pass exactly as the Lloyd kernel
    // runs it: fixed row chunks, per-chunk partial inertia, in-order merge.
    let assign_inertia = |rt: Runtime| -> f64 {
        rt.par_reduce(
            points.len(),
            ROW_CHUNK,
            |range| {
                let mut local = 0.0;
                for i in range {
                    let p = points.row(i);
                    let mut best = f64::MAX;
                    for c in centroids.rows() {
                        let d = squared_distance(p, c);
                        if d < best {
                            best = d;
                        }
                    }
                    local += best;
                }
                local
            },
            |a, b| a + b,
        )
        .expect("non-empty workload")
    };

    let mut quantize_seconds = Vec::new();
    let mut assign_seconds = Vec::new();
    let baseline_grid = quantizer.quantize_with(points, Runtime::sequential());
    let baseline_inertia = assign_inertia(Runtime::sequential());
    for &threads in &THREAD_COUNTS {
        let rt = Runtime::with_threads(threads);
        // Determinism check rides along with the timing run.
        let out = quantizer.quantize_with(points, rt);
        assert_eq!(out, baseline_grid, "quantize changed at {threads} threads");
        assert_eq!(
            assign_inertia(rt).to_bits(),
            baseline_inertia.to_bits(),
            "assignment inertia changed at {threads} threads"
        );
        let (q, _) = best_of(|| quantizer.quantize_with(points, rt).0.total_mass());
        let (a, _) = best_of(|| assign_inertia(rt));
        quantize_seconds.push(q);
        assign_seconds.push(a);
    }

    let rows: Vec<Vec<String>> = THREAD_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &threads)| {
            vec![
                threads.to_string(),
                format!("{:.6}", quantize_seconds[i]),
                format!("{:.2}x", quantize_seconds[0] / quantize_seconds[i]),
                format!("{:.6}", assign_seconds[i]),
                format!("{:.2}x", assign_seconds[0] / assign_seconds[i]),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "threads",
                "quantize_100k (s)",
                "speedup",
                "kmeans_assign_100k_k16 (s)",
                "speedup"
            ],
            &rows,
        )
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"points\": {}, \"dims\": {dims}, \"noise_percent\": 75.0, \"seed\": 42, \"repeats\": {REPEATS}, \"timing\": \"best-of\" }},\n",
        points.len(),
    ));
    json.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_cpus}, \"note\": \"speedups are bounded by the physical cores of the machine that ran this file; a single-core host cannot show parallel speedup — re-run `cargo run --release -p adawave-bench --bin parallel_bench` on multicore hardware\" }},\n",
    ));
    json.push_str("  \"determinism\": \"asserted in-process: every thread count produced bit-identical grids and inertia\",\n");
    json.push_str("  \"kernels\": {\n");
    for (name, seconds) in [
        ("quantize_100k", &quantize_seconds),
        ("kmeans_assign_100k_k16", &assign_seconds),
    ] {
        json.push_str(&format!("    \"{name}\": {{ "));
        for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
            json.push_str(&format!(
                "\"threads_{threads}_seconds\": {:.6}, ",
                seconds[i]
            ));
        }
        json.push_str(&format!(
            "\"speedup_at_4_threads\": {:.3} }}{}\n",
            seconds[0] / seconds[2],
            if name == "quantize_100k" { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json (host cores: {host_cpus})");
}
