//! Raw-speed kernel microbenchmarks: what the shared autovectorized
//! distance/argmin kernels, the f32 quantization lane, the cell-grid /
//! kd-index neighbor acceleration and the contiguous wavelet-lane fast
//! path buy over the scalar paths they replaced.
//!
//! Every timed claim is gated by an in-process parity assertion against an
//! embedded copy of the pre-optimization reference implementation: the
//! f64 kernels must be *bit-identical* to their scalar references, the
//! accelerated neighbor paths label-identical, and the opt-in f32 lane is
//! held to its own documented contract (deterministic, near-total cell
//! agreement with f64) rather than to bitwise equality.
//!
//! Run with `cargo run --release -p adawave-bench --bin kernel_bench`
//! (writes `BENCH_kernels.json` into the current directory); pass
//! `--smoke` for a seconds-long variant that still runs every parity
//! assertion — the mode CI drives under multiple thread counts.

use std::time::Instant;

use adawave_api::{Model as _, PointsView, Precision};
use adawave_baselines::{dbscan, KdTree, NearestTrainingModel};
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::synthetic::synthetic_benchmark;
use adawave_grid::{BoundingBox, Quantizer};
use adawave_linalg::{nearest_row, squared_distance};
use adawave_runtime::Runtime;
use adawave_wavelet::{dwt1d_lowpass, BoundaryMode, DenseGrid, Wavelet};

const REPEATS: usize = 7;

/// Best-of-`repeats` wall-clock seconds of `f`, with a sink guard so the
/// optimizer cannot delete the work.
fn best_of<F: FnMut() -> usize>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::MAX;
    let mut sink = 0usize;
    for _ in 0..repeats {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(sink < usize::MAX);
    best
}

/// The pre-optimization scalar Euclidean distance (the deleted local
/// `euclidean` of `optics.rs` / `metrics::internal`): a generic fold with
/// the square root taken per call.
fn scalar_euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// The pre-optimization squared distance: the same generic fold without
/// the root — what the old k-means assignment loop inlined.
fn scalar_squared(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
}

struct Row {
    kernel: &'static str,
    reference: &'static str,
    ref_seconds: f64,
    new_seconds: f64,
    parity: &'static str,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.ref_seconds / self.new_seconds
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (per_cluster, repeats) = if smoke { (250, 2) } else { (5_000, REPEATS) };
    // 5 clusters x per_cluster points + 75% noise: the same 100k-point
    // 2-d workload as the other BENCH_*.json files (smaller under --smoke).
    let ds = synthetic_benchmark(75.0, per_cluster, 42);
    let points = ds.view();
    let n = points.len();
    let mut rows: Vec<Row> = Vec::new();

    // ---- kernel 1: farthest-point scan with the root deferred ------------
    // The dunn-index / OPTICS core-distance rewrite: order statistics of
    // distances commute with sqrt, so the scan compares squared distances
    // and takes one root at the edge instead of n roots inside the loop.
    {
        let queries: Vec<&[f64]> = (0..8).map(|i| points.row(i * (n / 8))).collect();
        let reference = |q: &[f64]| {
            let mut max = 0.0f64;
            for p in points.rows() {
                let d = scalar_euclidean(q, p);
                if d > max {
                    max = d;
                }
            }
            max
        };
        let optimized = |q: &[f64]| {
            let mut max_sq = 0.0f64;
            for p in points.rows() {
                let d = squared_distance(q, p);
                if d > max_sq {
                    max_sq = d;
                }
            }
            max_sq.sqrt()
        };
        for &q in &queries {
            assert_eq!(
                reference(q).to_bits(),
                optimized(q).to_bits(),
                "distance-scan: deferred sqrt diverged"
            );
        }
        let ref_seconds = best_of(repeats, || {
            queries.iter().map(|&q| reference(q) as usize).sum()
        });
        let new_seconds = best_of(repeats, || {
            queries.iter().map(|&q| optimized(q) as usize).sum()
        });
        rows.push(Row {
            kernel: "distance-scan-sqrt-deferred",
            reference: "scalar euclidean with sqrt per pair",
            ref_seconds,
            new_seconds,
            parity: "bit-identical maxima on 8 query points",
        });
    }

    // ---- kernel 2: k-means assignment argmin ------------------------------
    // The old lloyd loop: generic scalar squared distance per centroid,
    // running argmin in the caller. The new path is the fused
    // dim-dispatched `nearest_row`.
    {
        let k = 16usize;
        let dims = points.dims();
        let centroids: Vec<f64> = (0..k)
            .flat_map(|c| points.row(c * (n / k)).to_vec())
            .collect();
        let reference = || {
            let mut assignment = Vec::with_capacity(n);
            for p in points.rows() {
                let mut best = 0usize;
                let mut best_d = f64::MAX;
                for (c, centroid) in centroids.chunks_exact(dims).enumerate() {
                    let d = scalar_squared(p, centroid);
                    if d < best_d {
                        best = c;
                        best_d = d;
                    }
                }
                assignment.push(best);
            }
            assignment
        };
        let optimized = || {
            let mut assignment = Vec::with_capacity(n);
            for p in points.rows() {
                let (best, _) = nearest_row(p, &centroids, dims).expect("k >= 1");
                assignment.push(best);
            }
            assignment
        };
        assert_eq!(
            reference(),
            optimized(),
            "kmeans-assign: fused argmin diverged"
        );
        let ref_seconds = best_of(repeats, || reference().len());
        let new_seconds = best_of(repeats, || optimized().len());
        rows.push(Row {
            kernel: "kmeans-assign-argmin",
            reference: "scalar per-centroid fold + caller argmin",
            ref_seconds,
            new_seconds,
            parity: "identical assignment over all points (k=16)",
        });
    }

    // ---- kernel 3: f32 quantization lane ---------------------------------
    // The opt-in single-precision lane replaces the per-coordinate f64
    // division with a precomputed f32 multiply. It is not bit-comparable
    // to f64 (by contract); parity = deterministic + near-total cell
    // agreement away from cell boundaries.
    {
        let bounds = BoundingBox::from_points(points).expect("finite workload");
        let quantizer = Quantizer::with_bounds(bounds, &[128, 128]).expect("fits in 128 bits");
        let (_, keys64) = quantizer.quantize_with(points, Runtime::sequential());
        let (grid_a, keys32) = quantizer.quantize_f32_with(points, Runtime::sequential());
        let (grid_b, keys32_par) = quantizer.quantize_f32_with(points, Runtime::with_threads(4));
        assert_eq!(grid_a, grid_b, "f32 lane not thread-count deterministic");
        assert_eq!(
            keys32, keys32_par,
            "f32 lane not thread-count deterministic"
        );
        let disagreements = keys64
            .iter()
            .zip(keys32.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            disagreements * 1000 < n,
            "f32 lane disagrees with f64 on {disagreements}/{n} cells"
        );
        // Time the per-point cell-key kernel itself (the part the lane
        // changes); the surrounding sparse-grid accumulation is identical
        // in both lanes and would only dilute the ratio.
        let lane = quantizer.f32_lane();
        let ref_seconds = best_of(repeats, || {
            points
                .rows()
                .map(|p| quantizer.cell_key(p) as usize)
                .fold(0usize, usize::wrapping_add)
        });
        let new_seconds = best_of(repeats, || {
            points
                .rows()
                .map(|p| quantizer.cell_key_f32(&lane, p) as usize)
                .fold(0usize, usize::wrapping_add)
        });
        rows.push(Row {
            kernel: "quantize-cell-key-f32-lane",
            reference: "f64 lane (per-coordinate division)",
            ref_seconds,
            new_seconds,
            parity: "thread-count deterministic; <0.1% boundary cells differ from f64",
        });
    }

    // ---- kernel 4: radius neighbor queries -------------------------------
    // The scalar path behind every O(n) neighborhood scan vs the kd-tree
    // the accelerated meanshift/sync/DBSCAN/spectral paths query.
    {
        let radius = 0.02f64;
        let query_count = if smoke { 64 } else { 512 };
        let tree = KdTree::build(points);
        let reference = |q: &[f64]| {
            let r2 = radius * radius;
            let mut out = Vec::new();
            for (i, p) in points.rows().enumerate() {
                if squared_distance(q, p) <= r2 {
                    out.push(i);
                }
            }
            out
        };
        for i in 0..query_count {
            let q = points.row(i * (n / query_count));
            let mut got = tree.within_radius(q, radius);
            got.sort_unstable();
            assert_eq!(got, reference(q), "within_radius: neighbor set diverged");
        }
        let ref_seconds = best_of(repeats, || {
            (0..query_count)
                .map(|i| reference(points.row(i * (n / query_count))).len())
                .sum()
        });
        let new_seconds = best_of(repeats, || {
            (0..query_count)
                .map(|i| {
                    tree.within_radius(points.row(i * (n / query_count)), radius)
                        .len()
                })
                .sum()
        });
        rows.push(Row {
            kernel: "radius-neighbor-query",
            reference: "linear scan over all points",
            ref_seconds,
            new_seconds,
            parity: "identical (sorted) neighbor sets on every query",
        });
    }

    // ---- kernel 5: cached kd-index serving -------------------------------
    // Pre-PR, `NearestTrainingModel::predict_one` (and the meanshift
    // model) rebuilt a kd-tree per query; the index is now built once at
    // fit/load time.
    {
        let training_n = n.min(10_000);
        let training = PointsView::from_flat(&points.as_slice()[..training_n * points.dims()], 2)
            .expect("prefix view");
        let clustering = dbscan(training, &adawave_baselines::DbscanConfig::new(0.02, 5));
        let model = NearestTrainingModel::new("dbscan", training, &clustering);
        let query_count = if smoke { 32 } else { 200 };
        let queries: Vec<&[f64]> = (0..query_count)
            .map(|i| points.row(n - 1 - i * (n / query_count - 1)))
            .collect();
        let reference = |q: &[f64]| {
            // The old serving path: index the training batch per query.
            let tree = KdTree::build(training);
            tree.nearest(q, 1)
                .first()
                .and_then(|&(i, _)| clustering.label(i))
        };
        for &q in &queries {
            assert_eq!(
                model.predict_one(q),
                reference(q),
                "cached-index serving diverged from per-query rebuild"
            );
        }
        let ref_seconds = best_of(repeats.min(3), || {
            queries.iter().filter(|&&q| reference(q).is_some()).count()
        });
        let new_seconds = best_of(repeats, || {
            queries
                .iter()
                .filter(|&&q| model.predict_one(q).is_some())
                .count()
        });
        rows.push(Row {
            kernel: "predict-cached-kd-index",
            reference: "kd-tree rebuilt per query (pre-PR serving path)",
            ref_seconds,
            new_seconds,
            parity: "identical labels on every query (10k training rows)",
        });
    }

    // ---- kernel 6: contiguous wavelet lanes ------------------------------
    // The dense transform's innermost axis now hands the 1-D kernel a
    // direct slice instead of gathering each lane through the stride.
    {
        let side = if smoke { 128 } else { 512 };
        let mut grid = DenseGrid::zeros(&[side, side]);
        let mut x = 0.37f64;
        for v in grid.as_mut_slice() {
            x = (x * 97.0 + 0.31).fract();
            *v = x;
        }
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let mode = BoundaryMode::Zero;
        let reference = || {
            // The pre-PR lane walk: gather each (already contiguous) lane
            // into a scratch buffer, transform, scatter element-wise.
            let new_len = side.div_ceil(2);
            let mut out = DenseGrid::zeros(&[side, new_len]);
            let data = grid.as_slice();
            let mut lane = vec![0.0; side];
            for row in 0..side {
                let start = row * side;
                for (k, v) in lane.iter_mut().enumerate() {
                    *v = data[start + k];
                }
                let transformed = dwt1d_lowpass(&lane, &kernel, mode);
                let out_start = row * new_len;
                for (k, &v) in transformed.iter().enumerate() {
                    out.as_mut_slice()[out_start + k] = v;
                }
            }
            out
        };
        let optimized = || grid.lowpass_axis(1, &kernel, mode);
        let (a, b) = (reference(), optimized());
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "wavelet fast path not bit-identical"
            );
        }
        let ref_seconds = best_of(repeats, || reference().len());
        let new_seconds = best_of(repeats, || optimized().len());
        rows.push(Row {
            kernel: "wavelet-lowpass-contiguous-lane",
            reference: "per-lane gather + element-wise scatter",
            ref_seconds,
            new_seconds,
            parity: "bit-identical coefficients on a 512x512 grid",
        });
    }

    // ---- end-to-end sanity: the fixed-chunk determinism contract ----------
    // Not timed: a full f64 fit at several thread counts must agree with
    // the sequential fit bit for bit, and the f32 fit must agree with
    // itself — the bench fails loudly if a kernel change broke either.
    {
        let config = |p: Precision, rt: Runtime| {
            AdaWaveConfig::builder()
                .scale(64)
                .precision(p)
                .runtime(rt)
                .build()
        };
        for precision in [Precision::F64, Precision::F32] {
            let reference = AdaWave::new(config(precision, Runtime::sequential()))
                .fit(points)
                .expect("fit");
            for threads in [2, 4] {
                let parallel = AdaWave::new(config(precision, Runtime::with_threads(threads)))
                    .fit(points)
                    .expect("fit");
                assert_eq!(
                    reference, parallel,
                    "{precision}: thread count changed the fit"
                );
            }
        }
    }

    println!(
        "kernel microbenchmarks on the {n}-point workload (best of {repeats}, smoke={smoke}):"
    );
    for r in &rows {
        println!(
            "  {:32} {:>9.4}s -> {:>9.4}s  ({:>6.2}x)  [{}]",
            r.kernel,
            r.ref_seconds,
            r.new_seconds,
            r.speedup(),
            r.parity,
        );
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"points\": {n}, \"dims\": 2, \"noise_percent\": 75.0, \"seed\": 42, \"repeats\": {repeats}, \"timing\": \"best-of\", \"smoke\": {smoke} }},\n"
    ));
    json.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_cpus}, \"note\": \"single-core container; every kernel here is timed sequentially, so the ratios transfer but absolute times are host-dependent\" }},\n"
    ));
    json.push_str("  \"claim\": \"each optimized kernel is timed against an embedded copy of the scalar path it replaced, and a parity assertion gates every timed claim: f64 kernels are bit-identical to their references, accelerated neighbor paths are label-identical, and the opt-in f32 lane is deterministic across thread counts with near-total cell agreement\",\n");
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"reference\": \"{}\", \"reference_seconds\": {:.6}, \"optimized_seconds\": {:.6}, \"speedup\": {:.3}, \"parity\": \"{}\" }}{}\n",
            r.kernel,
            r.reference,
            r.ref_seconds,
            r.new_seconds,
            r.speedup(),
            r.parity,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if !smoke {
        std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
        println!("wrote BENCH_kernels.json (host cores: {host_cpus})");
    } else {
        println!("smoke mode: parity assertions passed, BENCH_kernels.json not rewritten");
    }
}
