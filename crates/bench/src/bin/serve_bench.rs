//! Serving-daemon load benchmark: what `adawave serve` adds on top of the
//! in-process predict kernel.
//!
//! Trains the adawave and kmeans models on the synthetic workload, saves
//! them, serves them from a real `adawave-serve` daemon on a loopback
//! port, and hammers it with concurrent keep-alive HTTP clients:
//!
//! * **single-point requests** — end-to-end request latency (p50/p99)
//!   and requests/second, per client count, and
//! * **batch requests** — CSV rows in, labels out; points/second through
//!   the full HTTP + parse + predict + render path.
//!
//! Label parity against the in-process model is asserted before timing.
//! The container caveat is sharper here than for the other benches: with
//! one core, clients and server workers share it, so concurrency measures
//! protocol overhead and scheduling, not parallel speedup.
//!
//! Run with `cargo run --release -p adawave-bench --bin serve_bench`
//! (writes `BENCH_serve.json` into the current directory); pass `--smoke`
//! for a seconds-long variant driving the same code paths.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adawave::serve::Client;
use adawave::{
    model_loader, save_model, standard_registry, AlgorithmSpec, ModelStore, ServeConfig, Server,
};
use adawave_bench::report::format_table;
use adawave_data::synthetic::synthetic_benchmark;

struct Row {
    algorithm: &'static str,
    clients: usize,
    single_requests: usize,
    single_per_second: f64,
    single_p50_micros: f64,
    single_p99_micros: f64,
    batch_rows: usize,
    batch_points_per_second: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (per_cluster, singles_per_client, batch_requests) = if smoke {
        (250, 100, 2)
    } else {
        (2_000, 1_500, 12)
    };
    let ds = synthetic_benchmark(75.0, per_cluster, 42);
    let points = ds.view();
    let n = points.len();

    // Train, persist, and keep the in-process models for the parity gate.
    let registry = standard_registry();
    let dir = std::env::temp_dir();
    let mut served: Vec<(&'static str, std::path::PathBuf, Box<dyn adawave::Model>)> = Vec::new();
    for (algorithm, spec) in [
        ("adawave", AlgorithmSpec::new("adawave")),
        (
            "kmeans",
            AlgorithmSpec::new("kmeans").with("k", 5).with("seed", 7),
        ),
    ] {
        let outcome = registry.fit_model(&spec, points).expect(algorithm);
        let path = dir.join(format!(
            "adawave_serve_bench_{algorithm}_{}.awm",
            std::process::id()
        ));
        save_model(&path, outcome.model.as_ref()).expect(algorithm);
        served.push((algorithm, path, outcome.model));
    }

    let store = Arc::new(ModelStore::new(model_loader()));
    for (algorithm, path, _) in &served {
        store.load(algorithm, path).expect(algorithm);
    }
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8, // enough for every client below to hold a worker
            ..ServeConfig::default()
        },
        Arc::clone(&store),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // The batch body: the full workload as CSV rows (built once).
    let batch_body: String = (0..n)
        .map(|i| {
            let row = points.row(i);
            let mut line = String::new();
            for (d, v) in row.iter().enumerate() {
                if d > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{v:?}"));
            }
            line.push('\n');
            line
        })
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for (algorithm, _, model) in &served {
        // Parity gate: the served answer must be byte-equivalent to the
        // in-process labels before any number counts.
        let expected = model.predict(points).expect(algorithm);
        let mut client = Client::connect(addr, Duration::from_secs(30)).expect("connect");
        let response = client
            .post(
                &format!("/models/{algorithm}/predict-batch"),
                "text/csv",
                &batch_body,
            )
            .expect("batch request");
        assert_eq!(response.status, 200, "{}", response.body);
        let served_labels: Vec<Option<usize>> = response
            .body
            .lines()
            .skip(1)
            .map(|l| l.parse::<usize>().ok())
            .collect();
        assert_eq!(
            served_labels,
            expected.assignment(),
            "{algorithm}: served labels diverged from in-process predict"
        );

        for clients in [1usize, 4] {
            // Single-point latency under `clients` concurrent connections.
            let wall = Instant::now();
            // audit:allow(raw-thread) load-generator clients for the benchmark; no clustering result depends on them
            let mut latencies: Vec<f64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        scope.spawn(move || {
                            let mut client =
                                Client::connect(addr, Duration::from_secs(30)).expect("connect");
                            let mut latencies = Vec::with_capacity(singles_per_client);
                            for i in 0..singles_per_client {
                                let row = points.row((c * singles_per_client + i) % n);
                                let body = format!("{{\"point\": [{}, {}]}}", row[0], row[1]);
                                let start = Instant::now();
                                let response = client
                                    .post(
                                        &format!("/models/{algorithm}/predict"),
                                        "application/json",
                                        &body,
                                    )
                                    .expect("single request");
                                latencies.push(start.elapsed().as_secs_f64());
                                assert_eq!(response.status, 200, "{}", response.body);
                            }
                            latencies
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread"))
                    .collect()
            });
            let wall_seconds = wall.elapsed().as_secs_f64();
            latencies.sort_by(f64::total_cmp);
            let total_requests = clients * singles_per_client;

            // Batch throughput on one connection (per client count the
            // batch numbers barely move — it is one big request — so
            // measure it under the same concurrency for completeness).
            let batch_wall = Instant::now();
            let mut batch_client = Client::connect(addr, Duration::from_secs(30)).expect("connect");
            for _ in 0..batch_requests {
                let response = batch_client
                    .post(
                        &format!("/models/{algorithm}/predict-batch"),
                        "text/csv",
                        &batch_body,
                    )
                    .expect("batch request");
                assert_eq!(response.status, 200);
            }
            let batch_seconds = batch_wall.elapsed().as_secs_f64();

            rows.push(Row {
                algorithm,
                clients,
                single_requests: total_requests,
                single_per_second: total_requests as f64 / wall_seconds,
                single_p50_micros: percentile(&latencies, 0.50) * 1e6,
                single_p99_micros: percentile(&latencies, 0.99) * 1e6,
                batch_rows: n,
                batch_points_per_second: (n * batch_requests) as f64 / batch_seconds,
            });
        }
    }

    server.shutdown();
    server.join();
    for (_, path, _) in &served {
        std::fs::remove_file(path).ok();
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.clients.to_string(),
                format!("{:.0}", r.single_per_second),
                format!("{:.0}", r.single_p50_micros),
                format!("{:.0}", r.single_p99_micros),
                format!("{:.0}", r.batch_points_per_second),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "model",
                "clients",
                "single req/s",
                "p50 (us)",
                "p99 (us)",
                "batch points/s"
            ],
            &table,
        )
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"points\": {n}, \"dims\": {}, \"noise_percent\": 75.0, \"seed\": 42, \"singles_per_client\": {singles_per_client}, \"batch_requests\": {batch_requests}, \"smoke\": {smoke} }},\n",
        points.dims(),
    ));
    json.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_cpus}, \"note\": \"single-core container: HTTP clients and serve workers share the core, so concurrent-client numbers measure protocol+scheduling overhead, not parallel speedup; served labels are asserted identical to in-process predict before timing\" }},\n",
    ));
    json.push_str("  \"claim\": \"the serve daemon turns the in-process predict kernel into a measurable network service: keep-alive HTTP/1.1, worker pool, per-request latency percentiles, and batch label parity with the offline CLI\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"algorithm\": \"{}\", \"clients\": {}, \"single_requests\": {}, \"single_requests_per_second\": {:.0}, \"single_p50_micros\": {:.1}, \"single_p99_micros\": {:.1}, \"batch_rows_per_request\": {}, \"batch_points_per_second\": {:.0} }}{}\n",
            r.algorithm,
            r.clients,
            r.single_requests,
            r.single_per_second,
            r.single_p50_micros,
            r.single_p99_micros,
            r.batch_rows,
            r.batch_points_per_second,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json (host cores: {host_cpus})");
}
