//! # adawave-bench
//!
//! Experiment harness for the AdaWave reproduction: a uniform way to run
//! every algorithm on every dataset of the paper, plus one experiment
//! function per table and figure of the evaluation section. The
//! `experiments` binary prints the same rows/series the paper reports;
//! the Criterion benches in `benches/` measure the runtime-oriented
//! figures.
//!
//! The `layout_bench` and `parallel_bench` binaries additionally measure
//! the data-layout and multi-threading speedups of the hot kernels,
//! writing `BENCH_layout.json` / `BENCH_parallel.json`.
//!
//! ```
//! use adawave_bench::report::format_table;
//!
//! let table = format_table(
//!     &["algorithm", "AMI"],
//!     &[vec!["adawave".to_string(), "0.76".to_string()]],
//! );
//! assert!(table.contains("adawave"));
//! ```
//!
//! ```no_run
//! use adawave_bench::experiments;
//!
//! // Regenerate Fig. 8 (AMI vs noise percentage) at a reduced scale.
//! let rows = experiments::fig8_noise_sweep(600, &[20.0, 50.0, 80.0], 42);
//! experiments::print_fig8(&rows);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod algorithms;
pub mod experiments;
pub mod report;

pub use algorithms::{run_algorithm, AlgoOutcome, Algorithm};
