//! One experiment function per table and figure of the paper's evaluation
//! section (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
//! for measured-vs-paper numbers).

use std::time::Instant;

use adawave_baselines::{kmeans, KMeansConfig};
use adawave_core::{AdaWave, AdaWaveConfig, ThresholdStrategy};
use adawave_data::synthetic::{
    running_example, runtime_scaling_dataset, synthetic_benchmark, SYNTHETIC_NOISE_LABEL,
};
use adawave_data::uci::{self, table1_datasets};
use adawave_data::{min_max_normalize, Dataset};
use adawave_grid::{Connectivity, Quantizer};
use adawave_linalg::pearson_correlation;
use adawave_metrics::{ami, NOISE_LABEL};
use adawave_wavelet::{dwt2d, BoundaryMode, DenseGrid, Wavelet};

use adawave::standard_registry;

use crate::algorithms::{run_algorithm_with, AlgoOutcome, Algorithm, RunOptions};
use crate::report::{fmt3, fmt_seconds, format_table};

// ---------------------------------------------------------------------------
// Fig. 2 — the running example
// ---------------------------------------------------------------------------

/// One row of the Fig. 2 comparison.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Algorithm compared.
    pub algorithm: Algorithm,
    /// AMI over the points that truly belong to a cluster.
    pub ami: f64,
    /// Number of clusters the algorithm reported.
    pub clusters: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Reproduce Fig. 1/2: run AdaWave, k-means, DBSCAN and SkinnyDip on the
/// running example (five irregular clusters at ≈50% noise).
///
/// `points_per_cluster` scales the dataset (5600 in the paper).
pub fn fig2_running_example(points_per_cluster: usize, seed: u64) -> Vec<Fig2Row> {
    let ds = if points_per_cluster == 5600 {
        running_example(seed)
    } else {
        synthetic_benchmark(50.0, points_per_cluster, seed)
    };
    let options = RunOptions::new(5, &ds.labels, ds.noise_label);
    let registry = standard_registry();
    [
        Algorithm::AdaWave,
        Algorithm::KMeans,
        Algorithm::Dbscan,
        Algorithm::SkinnyDip,
    ]
    .iter()
    .map(|&algorithm| {
        let outcome = run_algorithm_with(&registry, algorithm, ds.view(), &options);
        Fig2Row {
            algorithm,
            ami: outcome.ami_ignoring_noise(&ds.labels, SYNTHETIC_NOISE_LABEL),
            clusters: outcome.clusters,
            seconds: outcome.seconds,
        }
    })
    .collect()
}

/// Print Fig. 2 rows.
pub fn print_fig2(rows: &[Fig2Row]) {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.name().to_string(),
                fmt3(r.ami),
                r.clusters.to_string(),
                fmt_seconds(r.seconds),
            ]
        })
        .collect();
    println!("Fig. 2 — running example (5 clusters, ~50% noise)");
    println!(
        "{}",
        format_table(&["algorithm", "AMI", "clusters", "time"], &table_rows)
    );
}

// ---------------------------------------------------------------------------
// Fig. 5 — effect of the 2-D wavelet transform on the feature space
// ---------------------------------------------------------------------------

/// Summary statistics of the original vs transformed feature space.
#[derive(Debug, Clone)]
pub struct Fig5Stats {
    /// Occupied cells in the original quantized space.
    pub original_cells: usize,
    /// Occupied cells (above the near-zero cut) after the 2-D DWT.
    pub transformed_cells: usize,
    /// Cells with no occupied neighbor ("scattered outliers") before.
    pub original_isolated: usize,
    /// Cells with no occupied neighbor after the transform.
    pub transformed_isolated: usize,
    /// Ratio of the maximum to the mean density after the transform
    /// (how much the clusters "stand out").
    pub contrast_after: f64,
    /// Same ratio before the transform.
    pub contrast_before: f64,
}

fn isolated_cells(grid: &adawave_grid::SparseGrid, codec: &adawave_grid::KeyCodec) -> usize {
    grid.keys()
        .filter(|&key| {
            Connectivity::Face
                .neighbors(codec, key)
                .iter()
                .all(|n| !grid.contains(*n))
        })
        .count()
}

/// Reproduce the Fig. 5 illustration quantitatively: quantize the running
/// example, apply one level of 2-D DWT, and compare sparsity/outlier counts.
pub fn fig5_transform(points_per_cluster: usize, seed: u64) -> Fig5Stats {
    let ds = synthetic_benchmark(50.0, points_per_cluster, seed);
    let quantizer = Quantizer::fit(ds.view(), 128).expect("quantize");
    let (grid, _) = quantizer.quantize(ds.view());
    let kernel = Wavelet::Cdf22.density_smoothing_kernel();
    let (mut transformed, down_codec) = adawave_core::sparse_wavelet_smooth(
        &grid,
        quantizer.codec(),
        &kernel,
        BoundaryMode::Zero,
        1,
    )
    .expect("transform");
    transformed.drop_near_zero(1e-9);

    let mean_before = grid.total_mass() / grid.occupied_cells().max(1) as f64;
    let mean_after = transformed.total_mass() / transformed.occupied_cells().max(1) as f64;
    Fig5Stats {
        original_cells: grid.occupied_cells(),
        transformed_cells: transformed.occupied_cells(),
        original_isolated: isolated_cells(&grid, quantizer.codec()),
        transformed_isolated: isolated_cells(&transformed, &down_codec),
        contrast_before: grid.max_density() / mean_before.max(1e-12),
        contrast_after: transformed.max_density() / mean_after.max(1e-12),
    }
}

/// Print the Fig. 5 statistics.
pub fn print_fig5(stats: &Fig5Stats) {
    println!("Fig. 5 — 2-D discrete wavelet transform of the feature space");
    println!(
        "{}",
        format_table(
            &["quantity", "original", "transformed"],
            &[
                vec![
                    "occupied cells".into(),
                    stats.original_cells.to_string(),
                    stats.transformed_cells.to_string(),
                ],
                vec![
                    "isolated (outlier) cells".into(),
                    stats.original_isolated.to_string(),
                    stats.transformed_isolated.to_string(),
                ],
                vec![
                    "max/mean density contrast".into(),
                    fmt3(stats.contrast_before),
                    fmt3(stats.contrast_after),
                ],
            ],
        )
    );
}

/// The dense 2-D subband decomposition used in the Fig. 5 illustration;
/// returns the energy in each subband of the running example's grid.
pub fn fig5_subband_energy(points_per_cluster: usize, seed: u64) -> [(String, f64); 4] {
    let ds = synthetic_benchmark(50.0, points_per_cluster, seed);
    let quantizer = Quantizer::fit(ds.view(), 128).expect("quantize");
    let mut dense = DenseGrid::zeros(&[128, 128]);
    for p in ds.points.rows() {
        let coords: Vec<usize> = quantizer
            .cell_coords(p)
            .into_iter()
            .map(|c| c as usize)
            .collect();
        dense.add(&coords, 1.0);
    }
    let sub = dwt2d(&dense, &Wavelet::Cdf22.filter_bank(), BoundaryMode::Zero).expect("dwt2d");
    let energy = |g: &DenseGrid| g.as_slice().iter().map(|v| v * v).sum::<f64>();
    [
        ("LL (average signal)".to_string(), energy(&sub.ll)),
        ("LH (horizontal)".to_string(), energy(&sub.lh)),
        ("HL (vertical)".to_string(), energy(&sub.hl)),
        ("HH (diagonal)".to_string(), energy(&sub.hh)),
    ]
}

// ---------------------------------------------------------------------------
// Fig. 6 — threshold choosing
// ---------------------------------------------------------------------------

/// The sorted-density curve and the thresholds chosen by each strategy.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// Number of grid cells in the curve.
    pub cells: usize,
    /// A decile summary of the sorted density curve (11 values, descending).
    pub density_deciles: Vec<f64>,
    /// `(strategy name, threshold, surviving cells)` per strategy.
    pub thresholds: Vec<(String, f64, usize)>,
}

/// Reproduce Fig. 6: the sorted grid-density curve of the 50%-noise
/// synthetic dataset and the adaptive thresholds chosen on it.
pub fn fig6_threshold(points_per_cluster: usize, seed: u64) -> Fig6Data {
    let ds = synthetic_benchmark(50.0, points_per_cluster, seed);
    let result = AdaWave::default().fit(ds.view()).expect("adawave");
    let sorted = result.sorted_densities().to_vec();
    let m = sorted.len();
    let deciles: Vec<f64> = (0..=10).map(|i| sorted[((m - 1) * i) / 10]).collect();
    let strategies = [
        ThresholdStrategy::ElbowAngle { divisor: 3.0 },
        ThresholdStrategy::ThreeSegment,
        ThresholdStrategy::Kneedle,
        ThresholdStrategy::Quantile(0.2),
    ];
    let thresholds = strategies
        .iter()
        .map(|s| {
            let t = s.choose(&sorted);
            let surviving = sorted.iter().filter(|&&d| d >= t).count();
            (s.name().to_string(), t, surviving)
        })
        .collect();
    Fig6Data {
        cells: m,
        density_deciles: deciles,
        thresholds,
    }
}

/// Print the Fig. 6 data.
pub fn print_fig6(data: &Fig6Data) {
    println!("Fig. 6 — adaptive threshold on the sorted grid densities");
    println!("cells after transform: {}", data.cells);
    println!(
        "density deciles (descending): {}",
        data.density_deciles
            .iter()
            .map(|d| fmt3(*d))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let rows: Vec<Vec<String>> = data
        .thresholds
        .iter()
        .map(|(name, t, surviving)| vec![name.clone(), fmt3(*t), surviving.to_string()])
        .collect();
    println!(
        "{}",
        format_table(&["strategy", "threshold", "surviving cells"], &rows)
    );
}

// ---------------------------------------------------------------------------
// Fig. 7 — the synthetic dataset itself
// ---------------------------------------------------------------------------

/// Print a summary of the Fig. 7 synthetic dataset at a given noise level.
pub fn print_fig7(noise_percent: f64, points_per_cluster: usize, seed: u64) {
    let ds = synthetic_benchmark(noise_percent, points_per_cluster, seed);
    println!(
        "Fig. 7 — synthetic dataset: n = {}, d = {}, clusters = {}, noise = {:.1}%",
        ds.len(),
        ds.dims(),
        ds.cluster_count(),
        ds.noise_fraction() * 100.0
    );
    let rows: Vec<Vec<String>> = ds
        .class_sizes()
        .iter()
        .map(|(label, count)| {
            let kind = if Some(*label) == ds.noise_label {
                "uniform noise"
            } else {
                match label {
                    0 => "gaussian ellipse",
                    1 | 2 => "circular (ring)",
                    _ => "sloping line",
                }
            };
            vec![label.to_string(), kind.to_string(), count.to_string()]
        })
        .collect();
    println!("{}", format_table(&["label", "shape", "points"], &rows));
}

// ---------------------------------------------------------------------------
// Fig. 8 — AMI vs noise percentage
// ---------------------------------------------------------------------------

/// One measurement of the Fig. 8 sweep.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Noise percentage of the dataset.
    pub noise_percent: f64,
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// AMI over true cluster members (the paper's protocol).
    pub ami: f64,
    /// Number of clusters reported.
    pub clusters: usize,
}

/// Reproduce Fig. 8: sweep the noise percentage and score every Fig. 8
/// algorithm with the noise-masked AMI.
pub fn fig8_noise_sweep(
    points_per_cluster: usize,
    noise_levels: &[f64],
    seed: u64,
) -> Vec<Fig8Row> {
    let registry = standard_registry();
    let mut rows = Vec::new();
    for &noise in noise_levels {
        let ds = synthetic_benchmark(noise, points_per_cluster, seed);
        let options = RunOptions::new(5, &ds.labels, ds.noise_label);
        for &algorithm in &Algorithm::FIG8 {
            let outcome = run_algorithm_with(&registry, algorithm, ds.view(), &options);
            rows.push(Fig8Row {
                noise_percent: noise,
                algorithm,
                ami: outcome.ami_ignoring_noise(&ds.labels, SYNTHETIC_NOISE_LABEL),
                clusters: outcome.clusters,
            });
        }
    }
    rows
}

/// Print the Fig. 8 series as a noise × algorithm matrix.
pub fn print_fig8(rows: &[Fig8Row]) {
    let mut noise_levels: Vec<f64> = rows.iter().map(|r| r.noise_percent).collect();
    noise_levels.sort_by(f64::total_cmp);
    noise_levels.dedup();
    let mut headers = vec!["noise %".to_string()];
    headers.extend(Algorithm::FIG8.iter().map(|a| a.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table_rows: Vec<Vec<String>> = noise_levels
        .iter()
        .map(|&noise| {
            let mut row = vec![format!("{noise:.0}")];
            for &algorithm in &Algorithm::FIG8 {
                let ami = rows
                    .iter()
                    .find(|r| r.noise_percent == noise && r.algorithm == algorithm)
                    .map(|r| r.ami)
                    .unwrap_or(f64::NAN);
                row.push(fmt3(ami));
            }
            row
        })
        .collect();
    println!("Fig. 8 — AMI (non-noise points) vs noise percentage");
    println!("{}", format_table(&header_refs, &table_rows));
}

// ---------------------------------------------------------------------------
// Fig. 9 — Roadmap case study
// ---------------------------------------------------------------------------

/// Result of the Roadmap case study.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Number of points clustered.
    pub n: usize,
    /// AMI of AdaWave against the city/noise ground truth.
    pub ami: f64,
    /// Number of clusters AdaWave detected.
    pub clusters: usize,
    /// Fraction of points labeled noise.
    pub noise_fraction: f64,
    /// Wall-clock seconds for the AdaWave run.
    pub seconds: f64,
}

/// Reproduce Fig. 9: run AdaWave on the Roadmap-like surrogate.
pub fn fig9_roadmap(n: usize, seed: u64) -> Fig9Result {
    let ds = uci::roadmap_like(n, seed);
    let start = Instant::now();
    let result = AdaWave::default().fit(ds.view()).expect("adawave");
    let seconds = start.elapsed().as_secs_f64();
    let labels = result.to_labels(NOISE_LABEL);
    Fig9Result {
        n: ds.len(),
        ami: ami(&ds.labels, &labels),
        clusters: result.cluster_count(),
        noise_fraction: result.noise_fraction(),
        seconds,
    }
}

/// Print the Fig. 9 result.
pub fn print_fig9(result: &Fig9Result) {
    println!("Fig. 9 — Roadmap case study (surrogate road network)");
    println!(
        "{}",
        format_table(
            &["n", "clusters", "noise fraction", "AMI", "time"],
            &[vec![
                result.n.to_string(),
                result.clusters.to_string(),
                fmt3(result.noise_fraction),
                fmt3(result.ami),
                fmt_seconds(result.seconds),
            ]],
        )
    );
}

// ---------------------------------------------------------------------------
// Fig. 10 — runtime comparison
// ---------------------------------------------------------------------------

/// One runtime measurement.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Total number of objects in the dataset.
    pub n: usize,
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Reproduce Fig. 10: wall-clock runtime of the Fig. 10 algorithms as the
/// number of objects grows (75% noise, as in the paper).
pub fn fig10_runtime(points_per_cluster: &[usize], seed: u64) -> Vec<Fig10Row> {
    let registry = standard_registry();
    let mut rows = Vec::new();
    for &per_cluster in points_per_cluster {
        let ds = runtime_scaling_dataset(per_cluster, seed);
        let options = RunOptions::new(5, &ds.labels, ds.noise_label);
        for &algorithm in &Algorithm::FIG10 {
            let outcome = run_algorithm_with(&registry, algorithm, ds.view(), &options);
            rows.push(Fig10Row {
                n: ds.len(),
                algorithm,
                seconds: outcome.seconds,
            });
        }
    }
    rows
}

/// Print the Fig. 10 series as an n × algorithm matrix of runtimes.
pub fn print_fig10(rows: &[Fig10Row]) {
    let mut sizes: Vec<usize> = rows.iter().map(|r| r.n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut headers = vec!["n".to_string()];
    headers.extend(Algorithm::FIG10.iter().map(|a| a.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table_rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for &algorithm in &Algorithm::FIG10 {
                let secs = rows
                    .iter()
                    .find(|r| r.n == n && r.algorithm == algorithm)
                    .map(|r| r.seconds)
                    .unwrap_or(f64::NAN);
                row.push(fmt_seconds(secs));
            }
            row
        })
        .collect();
    println!("Fig. 10 — runtime vs number of objects (75% noise)");
    println!("{}", format_table(&header_refs, &table_rows));
}

// ---------------------------------------------------------------------------
// Table I — real-world (surrogate) datasets
// ---------------------------------------------------------------------------

/// One cell of Table I.
#[derive(Debug, Clone)]
pub struct Table1Cell {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// AMI against the class labels (after noise reassignment, as in the
    /// paper).
    pub ami: f64,
}

fn dataset_true_k(ds: &Dataset) -> usize {
    ds.cluster_count().max(1)
}

/// Reproduce Table I on the UCI surrogates. `roadmap_n` controls the size
/// of the Roadmap surrogate; `max_points` caps every dataset (0 = no cap)
/// so quick runs stay fast.
pub fn table1(seed: u64, roadmap_n: usize, max_points: usize) -> Vec<Table1Cell> {
    let registry = standard_registry();
    let mut cells = Vec::new();
    for mut ds in table1_datasets(seed, roadmap_n) {
        if max_points > 0 && ds.len() > max_points {
            let mut rng = adawave_data::Rng::new(seed ^ 0xACE);
            ds = ds.subsample(max_points, &mut rng);
        }
        min_max_normalize(&mut ds.points);
        let options = RunOptions {
            reassign_noise: true,
            adawave_scale: 128,
            ..RunOptions::new(dataset_true_k(&ds), &ds.labels, ds.noise_label)
        };
        for &algorithm in &Algorithm::TABLE1 {
            let outcome = run_algorithm_with(&registry, algorithm, ds.view(), &options);
            cells.push(Table1Cell {
                dataset: ds.name.clone(),
                algorithm,
                ami: score_table1(&ds, &outcome),
            });
        }
    }
    cells
}

fn score_table1(ds: &Dataset, outcome: &AlgoOutcome) -> f64 {
    // Table I datasets have no noise ground truth: plain AMI on all points.
    ami(&ds.labels, &outcome.labels)
}

/// Print Table I as a dataset × algorithm matrix plus the per-algorithm
/// average (the paper's "AVG" column).
pub fn print_table1(cells: &[Table1Cell]) {
    let mut datasets: Vec<String> = cells.iter().map(|c| c.dataset.clone()).collect();
    datasets.dedup();
    let mut headers = vec!["dataset".to_string()];
    headers.extend(Algorithm::TABLE1.iter().map(|a| a.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for dataset in &datasets {
        let mut row = vec![dataset.clone()];
        for &algorithm in &Algorithm::TABLE1 {
            let ami = cells
                .iter()
                .find(|c| &c.dataset == dataset && c.algorithm == algorithm)
                .map(|c| c.ami)
                .unwrap_or(f64::NAN);
            row.push(fmt3(ami));
        }
        table_rows.push(row);
    }
    // AVG row.
    let mut avg_row = vec!["AVG".to_string()];
    for &algorithm in &Algorithm::TABLE1 {
        let values: Vec<f64> = cells
            .iter()
            .filter(|c| c.algorithm == algorithm)
            .map(|c| c.ami)
            .collect();
        let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
        avg_row.push(fmt3(avg));
    }
    table_rows.push(avg_row);
    println!("Table I — AMI on real-world dataset surrogates");
    println!("{}", format_table(&header_refs, &table_rows));
}

// ---------------------------------------------------------------------------
// Table II — Glass attribute/class correlation
// ---------------------------------------------------------------------------

/// Reproduce Table II: Pearson correlation of every Glass attribute with
/// the class label, on the Glass surrogate.
pub fn table2_glass(seed: u64) -> Vec<(String, f64)> {
    let ds = uci::glass(seed);
    let attribute_names = ["RI", "Na", "Mg", "Al", "Si", "K", "Ca", "Ba", "Fe"];
    let class: Vec<f64> = ds.labels.iter().map(|&l| l as f64).collect();
    attribute_names
        .iter()
        .enumerate()
        .map(|(j, name)| {
            let column: Vec<f64> = ds.points.rows().map(|p| p[j]).collect();
            (name.to_string(), pearson_correlation(&column, &class))
        })
        .collect()
}

/// Print Table II.
pub fn print_table2(correlations: &[(String, f64)]) {
    println!("Table II — each attribute's correlation with class (Glass surrogate)");
    let rows: Vec<Vec<String>> = correlations
        .iter()
        .map(|(name, corr)| vec![name.clone(), format!("{corr:+.4}")])
        .collect();
    println!("{}", format_table(&["attribute", "correlation"], &rows));
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One ablation measurement: a named configuration and its masked AMI on
/// the 75%-noise synthetic benchmark.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which design dimension is varied.
    pub dimension: String,
    /// The variant evaluated.
    pub variant: String,
    /// AMI over true cluster members.
    pub ami: f64,
    /// Clusters found.
    pub clusters: usize,
}

/// Ablate AdaWave's main design choices (threshold strategy, wavelet
/// family, grid scale, connectivity, decomposition level) on the 75%-noise
/// synthetic benchmark.
pub fn ablation(points_per_cluster: usize, seed: u64) -> Vec<AblationRow> {
    let ds = synthetic_benchmark(75.0, points_per_cluster, seed);
    let score = |config: AdaWaveConfig| -> (f64, usize) {
        let result = AdaWave::new(config).fit(ds.view()).expect("adawave");
        (
            adawave_metrics::ami_ignoring_noise(
                &ds.labels,
                &result.to_labels(NOISE_LABEL),
                SYNTHETIC_NOISE_LABEL,
            ),
            result.cluster_count(),
        )
    };
    let mut rows = Vec::new();

    for strategy in [
        ThresholdStrategy::ElbowAngle { divisor: 3.0 },
        ThresholdStrategy::ThreeSegment,
        ThresholdStrategy::Kneedle,
        ThresholdStrategy::Quantile(0.2),
        ThresholdStrategy::Fixed(0.0),
    ] {
        let (ami, clusters) = score(AdaWaveConfig::builder().threshold(strategy).build());
        rows.push(AblationRow {
            dimension: "threshold".into(),
            variant: strategy.name().into(),
            ami,
            clusters,
        });
    }
    for wavelet in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Cdf22] {
        let (ami, clusters) = score(AdaWaveConfig::builder().wavelet(wavelet).build());
        rows.push(AblationRow {
            dimension: "wavelet".into(),
            variant: wavelet.name().into(),
            ami,
            clusters,
        });
    }
    for scale in [32, 64, 128, 256] {
        let (ami, clusters) = score(AdaWaveConfig::builder().scale(scale).build());
        rows.push(AblationRow {
            dimension: "scale".into(),
            variant: scale.to_string(),
            ami,
            clusters,
        });
    }
    for connectivity in Connectivity::ALL {
        let (ami, clusters) = score(AdaWaveConfig::builder().connectivity(connectivity).build());
        rows.push(AblationRow {
            dimension: "connectivity".into(),
            variant: format!("{connectivity:?}"),
            ami,
            clusters,
        });
    }
    for levels in [1u32, 2, 3] {
        let (ami, clusters) = score(AdaWaveConfig::builder().levels(levels).build());
        rows.push(AblationRow {
            dimension: "levels".into(),
            variant: levels.to_string(),
            ami,
            clusters,
        });
    }
    rows
}

/// Print the ablation table.
pub fn print_ablation(rows: &[AblationRow]) {
    println!("Ablation — AdaWave design choices on the 75%-noise benchmark");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dimension.clone(),
                r.variant.clone(),
                fmt3(r.ami),
                r.clusters.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["dimension", "variant", "AMI", "clusters"], &table_rows)
    );
}

// ---------------------------------------------------------------------------
// Baseline comparison used by the k-means post-processing protocol
// ---------------------------------------------------------------------------

/// Run plain k-means on a dataset with the true `k` (helper used by the
/// examples and by sanity tests to compare against AdaWave).
pub fn kmeans_reference(ds: &Dataset, seed: u64) -> f64 {
    let result = kmeans(ds.view(), &KMeansConfig::new(dataset_true_k(ds), seed));
    ami(&ds.labels, &result.clustering.to_labels(NOISE_LABEL))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_threshold_separates_regimes_on_a_small_copy() {
        let data = fig6_threshold(200, 3);
        assert!(data.cells > 10);
        assert_eq!(data.density_deciles.len(), 11);
        // Deciles are non-increasing.
        for w in data.density_deciles.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(data.thresholds.len(), 4);
        for (_, t, surviving) in &data.thresholds {
            assert!(*t >= 0.0);
            assert!(*surviving <= data.cells);
        }
    }

    #[test]
    fn fig5_transform_reduces_isolated_cells() {
        let stats = fig5_transform(300, 5);
        assert!(stats.original_cells > 0);
        assert!(stats.transformed_cells > 0);
        assert!(
            stats.transformed_isolated <= stats.original_isolated,
            "isolated cells should not increase: {} -> {}",
            stats.original_isolated,
            stats.transformed_isolated
        );
    }

    #[test]
    fn table2_correlations_have_the_papers_signs() {
        let corr = table2_glass(11);
        assert_eq!(corr.len(), 9);
        let get = |name: &str| corr.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(get("Mg") < -0.4, "Mg {}", get("Mg"));
        assert!(get("Al") > 0.3, "Al {}", get("Al"));
        assert!(get("Na") > 0.2, "Na {}", get("Na"));
        assert!(get("K").abs() < 0.3, "K {}", get("K"));
    }

    #[test]
    fn fig2_rows_cover_the_four_algorithms() {
        let rows = fig2_running_example(120, 2);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.algorithm == Algorithm::AdaWave));
        for r in &rows {
            assert!((-0.1..=1.0).contains(&r.ami), "{:?}", r);
        }
    }
}
