//! Small plain-text table formatting helpers for the experiment binaries.

/// Format a table with a header row and aligned columns.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float with three decimals (the precision of the paper's tables).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Format seconds adaptively (ms below one second).
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds < 1.0 {
        format!("{:.1} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let table = format_table(
            &["name", "ami"],
            &[
                vec!["AdaWave".to_string(), "0.760".to_string()],
                vec!["k-means".to_string(), "0.250".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(table.contains("AdaWave"));
        assert!(table.contains("0.250"));
        // Columns aligned: "ami" header starts at same offset as values.
        let header_offset = lines[0].find("ami").unwrap();
        let value_offset = lines[2].find("0.760").unwrap();
        assert_eq!(header_offset, value_offset);
    }

    #[test]
    fn float_and_time_formatting() {
        assert_eq!(fmt3(0.7604), "0.760");
        assert_eq!(fmt3(1.0), "1.000");
        assert_eq!(fmt_seconds(0.0123), "12.3 ms");
        assert_eq!(fmt_seconds(2.5), "2.50 s");
    }
}
