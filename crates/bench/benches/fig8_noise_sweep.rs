//! Fig. 8 bench: AdaWave and the key baselines across noise levels.
//!
//! Criterion measures the runtime; the AMI series itself is produced by
//! `cargo run -p adawave-bench --release --bin experiments -- fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use adawave_baselines::{dbscan, kmeans, DbscanConfig, KMeansConfig};
use adawave_core::AdaWave;
use adawave_data::synthetic::synthetic_benchmark;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_noise_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &noise in &[20.0f64, 50.0, 80.0] {
        let ds = synthetic_benchmark(noise, 400, 1);
        group.bench_with_input(
            BenchmarkId::new("adawave", format!("noise{noise:.0}")),
            &ds,
            |b, ds| {
                let adawave = AdaWave::default();
                b.iter(|| black_box(adawave.fit(ds.view()).unwrap()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kmeans_k5", format!("noise{noise:.0}")),
            &ds,
            |b, ds| {
                b.iter(|| black_box(kmeans(ds.view(), &KMeansConfig::new(5, 1))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dbscan_eps0.02", format!("noise{noise:.0}")),
            &ds,
            |b, ds| {
                b.iter(|| black_box(dbscan(ds.view(), &DbscanConfig::new(0.02, 8))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
