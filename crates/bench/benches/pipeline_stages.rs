//! Micro-benchmarks of the individual AdaWave pipeline stages
//! (quantization, sparse wavelet transform, threshold selection, connected
//! components) plus the AMI metric itself. These support the complexity
//! claims of §IV-E: every stage is linear in the number of points or in the
//! number of occupied grid cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use adawave_core::{sparse_wavelet_smooth, ThresholdStrategy};
use adawave_data::synthetic::synthetic_benchmark;
use adawave_grid::{connected_components, Connectivity, Quantizer};
use adawave_metrics::ami;
use adawave_wavelet::{BoundaryMode, Wavelet};

fn bench_stages(c: &mut Criterion) {
    let ds = synthetic_benchmark(75.0, 800, 1);
    let quantizer = Quantizer::fit(ds.view(), 128).unwrap();
    let (grid, _) = quantizer.quantize(ds.view());
    let kernel = Wavelet::Cdf22.density_smoothing_kernel();
    let (transformed, down_codec) =
        sparse_wavelet_smooth(&grid, quantizer.codec(), &kernel, BoundaryMode::Zero, 1).unwrap();
    let sorted = transformed.sorted_densities();

    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.bench_function("quantize_scale128", |b| {
        b.iter(|| black_box(quantizer.quantize(ds.view())));
    });
    group.throughput(Throughput::Elements(grid.occupied_cells() as u64));
    group.bench_function("sparse_wavelet_level", |b| {
        b.iter(|| {
            black_box(
                sparse_wavelet_smooth(&grid, quantizer.codec(), &kernel, BoundaryMode::Zero, 1)
                    .unwrap(),
            )
        });
    });
    group.bench_function("threshold_elbow", |b| {
        let strategy = ThresholdStrategy::ElbowAngle { divisor: 3.0 };
        b.iter(|| black_box(strategy.choose(&sorted)));
    });
    group.bench_function("threshold_three_segment", |b| {
        let strategy = ThresholdStrategy::ThreeSegment;
        b.iter(|| black_box(strategy.choose(&sorted)));
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| {
            black_box(connected_components(
                &transformed,
                &down_codec,
                Connectivity::Face,
            ))
        });
    });
    group.finish();

    // AMI cost grows with n and the number of clusters; the paper uses it
    // for every score, so it must stay cheap relative to clustering.
    let mut metric_group = c.benchmark_group("metrics");
    metric_group.sample_size(20);
    metric_group.warm_up_time(std::time::Duration::from_millis(500));
    metric_group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[1_000usize, 10_000] {
        let truth: Vec<usize> = (0..n).map(|i| i % 6).collect();
        let pred: Vec<usize> = (0..n).map(|i| (i / 7) % 8).collect();
        metric_group.bench_with_input(BenchmarkId::new("ami", n), &n, |b, _| {
            b.iter(|| black_box(ami(&truth, &pred)));
        });
    }
    metric_group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
