//! Table I bench: AdaWave runtime on each real-world dataset surrogate
//! (the AMI matrix itself comes from `experiments -- table1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use adawave_core::AdaWave;
use adawave_data::min_max_normalize;
use adawave_data::uci;

fn bench_table1(c: &mut Criterion) {
    let mut datasets = vec![
        uci::seeds(1),
        uci::iris(1),
        uci::glass(1),
        uci::dumdh(1),
        uci::motor(1),
        uci::wholesale(1),
        uci::dermatology(1),
        // Reduced HTRU2 and Roadmap keep the bench under a minute.
        {
            let mut rng = adawave_data::Rng::new(9);
            uci::htru2(1).subsample(4_000, &mut rng)
        },
        uci::roadmap_like(20_000, 1),
    ];
    for ds in &mut datasets {
        min_max_normalize(&mut ds.points);
    }

    let mut group = c.benchmark_group("table1_adawave");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for ds in &datasets {
        group.throughput(Throughput::Elements(ds.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&ds.name), ds, |b, ds| {
            let adawave = AdaWave::default();
            b.iter(|| black_box(adawave.fit(ds.view()).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
