//! Ablation benches for the design choices called out in DESIGN.md:
//! wavelet family, grid scale, threshold strategy, connectivity and the
//! sparse-vs-dense transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use adawave_baselines::{wavecluster, WaveClusterConfig};
use adawave_core::{AdaWave, AdaWaveConfig, ThresholdStrategy};
use adawave_data::synthetic::synthetic_benchmark;
use adawave_grid::Connectivity;
use adawave_wavelet::Wavelet;

fn bench_ablations(c: &mut Criterion) {
    let ds = synthetic_benchmark(75.0, 400, 1);

    let mut group = c.benchmark_group("ablation_wavelet");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for wavelet in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Cdf22] {
        group.bench_with_input(
            BenchmarkId::from_parameter(wavelet.name()),
            &wavelet,
            |b, &w| {
                let adawave = AdaWave::new(AdaWaveConfig::builder().wavelet(w).build());
                b.iter(|| black_box(adawave.fit(ds.view()).unwrap()));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_scale");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scale in [32u32, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            let adawave = AdaWave::new(AdaWaveConfig::builder().scale(s).build());
            b.iter(|| black_box(adawave.fit(ds.view()).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_threshold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, strategy) in [
        ("elbow", ThresholdStrategy::ElbowAngle { divisor: 3.0 }),
        ("three-segment", ThresholdStrategy::ThreeSegment),
        ("kneedle", ThresholdStrategy::Kneedle),
        ("quantile", ThresholdStrategy::Quantile(0.2)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            let adawave = AdaWave::new(AdaWaveConfig::builder().threshold(s).build());
            b.iter(|| black_box(adawave.fit(ds.view()).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_connectivity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for connectivity in Connectivity::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{connectivity:?}")),
            &connectivity,
            |b, &conn| {
                let adawave = AdaWave::new(AdaWaveConfig::builder().connectivity(conn).build());
                b.iter(|| black_box(adawave.fit(ds.view()).unwrap()));
            },
        );
    }
    group.finish();

    // Sparse (AdaWave) vs dense (WaveCluster) transform on the same data:
    // the memory/structure ablation behind the "grid labeling" design.
    let mut group = c.benchmark_group("ablation_sparse_vs_dense");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("adawave_sparse", |b| {
        let adawave = AdaWave::default();
        b.iter(|| black_box(adawave.fit(ds.view()).unwrap()));
    });
    group.bench_function("wavecluster_dense", |b| {
        b.iter(|| black_box(wavecluster(ds.view(), &WaveClusterConfig::default())));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
