//! Fig. 10 bench: runtime scaling with the number of objects at 75% noise.
//!
//! The paper's claim is asymptotic: AdaWave is linear in `n` (grid-based),
//! k-means is linear per iteration, DBSCAN is `O(n log n)`–`O(n^2)`,
//! SkinnyDip is sub-linear-ish in practice. Criterion's per-size timings
//! let you verify the growth rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use adawave_baselines::{dbscan, kmeans, skinnydip, DbscanConfig, KMeansConfig, SkinnyDipConfig};
use adawave_core::AdaWave;
use adawave_data::synthetic::runtime_scaling_dataset;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_runtime");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &per_cluster in &[100usize, 200, 400, 800] {
        let ds = runtime_scaling_dataset(per_cluster, 2);
        let n = ds.len();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("adawave", n), &ds, |b, ds| {
            let adawave = AdaWave::default();
            b.iter(|| black_box(adawave.fit(ds.view()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("kmeans_k5", n), &ds, |b, ds| {
            b.iter(|| black_box(kmeans(ds.view(), &KMeansConfig::new(5, 1))));
        });
        group.bench_with_input(BenchmarkId::new("dbscan", n), &ds, |b, ds| {
            b.iter(|| black_box(dbscan(ds.view(), &DbscanConfig::new(0.02, 8))));
        });
        // SkinnyDip only on the smaller sizes (bootstrap p-values dominate).
        if per_cluster <= 200 {
            group.bench_with_input(BenchmarkId::new("skinnydip", n), &ds, |b, ds| {
                let config = SkinnyDipConfig {
                    bootstraps: 32,
                    ..Default::default()
                };
                b.iter(|| black_box(skinnydip(ds.view(), &config)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
