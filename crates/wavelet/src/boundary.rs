//! Signal extension (boundary handling) modes for filtering near the edges
//! of a finite signal.

/// How a finite signal is extended beyond its ends during convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoundaryMode {
    /// Values outside the signal are zero. Natural for grid densities: an
    /// empty cell outside the populated bounding box really has density 0.
    #[default]
    Zero,
    /// The signal wraps around (circular convolution). Required for exact
    /// perfect-reconstruction tests with orthogonal filter banks.
    Periodic,
    /// Half-sample symmetric reflection (`… x1 x0 | x0 x1 …`), the usual
    /// choice in image compression.
    Symmetric,
}

impl BoundaryMode {
    /// Return the sample of `signal` at (possibly out-of-range) index `idx`,
    /// according to this extension mode.
    ///
    /// # Panics
    /// Panics if `signal` is empty.
    pub fn sample(&self, signal: &[f64], idx: isize) -> f64 {
        let n = signal.len() as isize;
        assert!(n > 0, "cannot extend an empty signal");
        match self {
            BoundaryMode::Zero => {
                if idx < 0 || idx >= n {
                    0.0
                } else {
                    signal[idx as usize]
                }
            }
            BoundaryMode::Periodic => {
                let m = idx.rem_euclid(n);
                signal[m as usize]
            }
            BoundaryMode::Symmetric => {
                // Half-sample symmetric: reflect with period 2n.
                let period = 2 * n;
                let mut m = idx.rem_euclid(period);
                if m >= n {
                    m = period - 1 - m;
                }
                signal[m as usize]
            }
        }
    }

    /// All modes, for ablation sweeps.
    pub const ALL: [BoundaryMode; 3] = [
        BoundaryMode::Zero,
        BoundaryMode::Periodic,
        BoundaryMode::Symmetric,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIG: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

    #[test]
    fn zero_mode_outside_is_zero() {
        let m = BoundaryMode::Zero;
        assert_eq!(m.sample(&SIG, -1), 0.0);
        assert_eq!(m.sample(&SIG, 4), 0.0);
        assert_eq!(m.sample(&SIG, 2), 3.0);
    }

    #[test]
    fn periodic_mode_wraps() {
        let m = BoundaryMode::Periodic;
        assert_eq!(m.sample(&SIG, -1), 4.0);
        assert_eq!(m.sample(&SIG, 4), 1.0);
        assert_eq!(m.sample(&SIG, 5), 2.0);
        assert_eq!(m.sample(&SIG, -4), 1.0);
    }

    #[test]
    fn symmetric_mode_reflects() {
        let m = BoundaryMode::Symmetric;
        // ... 2 1 | 1 2 3 4 | 4 3 ...
        assert_eq!(m.sample(&SIG, -1), 1.0);
        assert_eq!(m.sample(&SIG, -2), 2.0);
        assert_eq!(m.sample(&SIG, 4), 4.0);
        assert_eq!(m.sample(&SIG, 5), 3.0);
    }

    #[test]
    fn in_range_indices_are_identity_for_all_modes() {
        for mode in BoundaryMode::ALL {
            for (i, &v) in SIG.iter().enumerate() {
                assert_eq!(mode.sample(&SIG, i as isize), v);
            }
        }
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(BoundaryMode::default(), BoundaryMode::Zero);
    }
}
