//! # adawave-wavelet
//!
//! Discrete wavelet transform (DWT) substrate for the AdaWave reproduction.
//!
//! The paper (§III) relies on the Mallat pyramid algorithm: a signal is
//! repeatedly split into a *scale space* (low-pass, "outline of the signal")
//! and a *wavelet space* (high-pass, "detail") by a pair of filters, with
//! downsampling by two after each filter. AdaWave uses the low-pass branch
//! of a Cohen–Daubechies–Feauveau (2,2) biorthogonal wavelet to smooth grid
//! densities; the WaveCluster baseline uses the same machinery on a dense
//! grid.
//!
//! This crate provides:
//!
//! * [`Wavelet`] — the filter families used in the paper's discussion
//!   (Haar, Daubechies, CDF biorthogonal) with their analysis/synthesis
//!   filter banks.
//! * [`dwt1d`] / [`idwt1d`] — single-level 1-D analysis and synthesis with
//!   selectable [`BoundaryMode`].
//! * [`wavedec`] / [`waverec`] — multi-level Mallat decomposition.
//! * [`lifting`] — an exact perfect-reconstruction implementation of the
//!   CDF(2,2) (LeGall 5/3) wavelet via the lifting scheme.
//! * [`DenseGrid`] and separable d-dimensional transforms, used by the
//!   WaveCluster baseline and by the Fig. 5 experiment.
//! * Coefficient [`denoise`] helpers (hard/soft thresholding).
//!
//! No external wavelet crate is used: everything is implemented from the
//! published filter coefficients and tested for orthogonality, perfect
//! reconstruction and energy conservation.
//!
//! ```
//! use adawave_wavelet::{dwt1d, idwt1d, BoundaryMode, Wavelet};
//!
//! let signal = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
//! let bank = Wavelet::Haar.filter_bank();
//! let (approx, detail) = dwt1d(&signal, &bank, BoundaryMode::Periodic);
//! let rebuilt = idwt1d(&approx, &detail, &bank, signal.len());
//! for (a, b) in signal.iter().zip(rebuilt.iter()) {
//!     assert!((a - b).abs() < 1e-10);
//! }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod boundary;
pub mod denoise;
pub mod dense;
pub mod family;
pub mod filter;
pub mod lifting;
pub mod transform;

pub use boundary::BoundaryMode;
pub use denoise::{hard_threshold, soft_threshold, universal_threshold};
pub use dense::{dwt2d, DenseGrid, Subbands2d};
pub use family::Wavelet;
pub use filter::FilterBank;
pub use transform::{
    dwt1d, dwt1d_lowpass, idwt1d, smooth_downsample, wavedec, waverec, MultiLevelDecomposition,
};

/// Errors produced by wavelet routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveletError {
    /// The signal is too short for the requested operation.
    SignalTooShort {
        /// Length of the provided signal.
        len: usize,
        /// Minimum length required.
        required: usize,
    },
    /// The requested number of decomposition levels exceeds what the signal
    /// length allows.
    TooManyLevels {
        /// Levels requested.
        requested: usize,
        /// Maximum possible for the signal length.
        max: usize,
    },
    /// Dense-grid shape mismatch.
    ShapeMismatch {
        /// Human readable description.
        context: &'static str,
    },
}

impl std::fmt::Display for WaveletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveletError::SignalTooShort { len, required } => {
                write!(f, "signal of length {len} is too short (need {required})")
            }
            WaveletError::TooManyLevels { requested, max } => {
                write!(f, "{requested} levels requested, at most {max} possible")
            }
            WaveletError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
        }
    }
}

impl std::error::Error for WaveletError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, WaveletError>;
