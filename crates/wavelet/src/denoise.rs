//! Coefficient thresholding helpers.
//!
//! After a wavelet transform, "many wavelet coefficients are close to zero,
//! which generally refers to the noise" (§III-B, *low entropy*). Removing
//! low-value coefficients is the first, automatic denoising step of both
//! WaveCluster and AdaWave; these helpers implement the standard hard and
//! soft thresholding rules plus the universal (VisuShrink) threshold.

/// Hard thresholding: zero every coefficient with `|c| < threshold`,
/// leave the rest untouched.
pub fn hard_threshold(coefficients: &mut [f64], threshold: f64) {
    for c in coefficients.iter_mut() {
        if c.abs() < threshold {
            *c = 0.0;
        }
    }
}

/// Soft thresholding (shrinkage): zero small coefficients and shrink the
/// remaining ones towards zero by `threshold`.
pub fn soft_threshold(coefficients: &mut [f64], threshold: f64) {
    for c in coefficients.iter_mut() {
        let magnitude = c.abs() - threshold;
        *c = if magnitude <= 0.0 {
            0.0
        } else {
            magnitude * c.signum()
        };
    }
}

/// The universal (VisuShrink) threshold `sigma * sqrt(2 ln n)`, where
/// `sigma` is estimated from the median absolute deviation of the finest
/// detail coefficients (`sigma = MAD / 0.6745`).
///
/// Returns 0.0 for empty input.
pub fn universal_threshold(finest_detail: &[f64]) -> f64 {
    let n = finest_detail.len();
    if n == 0 {
        return 0.0;
    }
    let mut abs: Vec<f64> = finest_detail.iter().map(|c| c.abs()).collect();
    abs.sort_by(f64::total_cmp);
    let median = if n % 2 == 1 {
        abs[n / 2]
    } else {
        0.5 * (abs[n / 2 - 1] + abs[n / 2])
    };
    let sigma = median / 0.6745;
    sigma * (2.0 * (n as f64).ln()).sqrt()
}

/// Fraction of coefficients that are exactly zero — a direct measure of the
/// "low entropy" / sparsity property the paper describes.
pub fn sparsity(coefficients: &[f64]) -> f64 {
    if coefficients.is_empty() {
        return 0.0;
    }
    let zeros = coefficients.iter().filter(|&&c| c == 0.0).count();
    zeros as f64 / coefficients.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_threshold_zeroes_small_keeps_large() {
        let mut c = vec![0.1, -0.2, 3.0, -4.0, 0.0];
        hard_threshold(&mut c, 0.5);
        assert_eq!(c, vec![0.0, 0.0, 3.0, -4.0, 0.0]);
    }

    #[test]
    fn soft_threshold_shrinks_large() {
        let mut c = vec![0.1, -0.2, 3.0, -4.0];
        soft_threshold(&mut c, 0.5);
        assert_eq!(c, vec![0.0, 0.0, 2.5, -3.5]);
    }

    #[test]
    fn soft_threshold_is_continuous_at_threshold() {
        let mut at = vec![0.5];
        soft_threshold(&mut at, 0.5);
        assert_eq!(at, vec![0.0]);
        let mut just_above = vec![0.5 + 1e-9];
        soft_threshold(&mut just_above, 0.5);
        assert!(just_above[0] > 0.0 && just_above[0] < 1e-8);
    }

    #[test]
    fn zero_threshold_is_identity_for_hard() {
        let orig = vec![0.3, -0.7, 2.0];
        let mut c = orig.clone();
        hard_threshold(&mut c, 0.0);
        assert_eq!(c, orig);
    }

    #[test]
    fn universal_threshold_scales_with_noise() {
        let small_noise: Vec<f64> = (0..100).map(|i| ((i % 7) as f64 - 3.0) * 0.01).collect();
        let big_noise: Vec<f64> = small_noise.iter().map(|x| x * 10.0).collect();
        let t_small = universal_threshold(&small_noise);
        let t_big = universal_threshold(&big_noise);
        assert!(t_big > t_small);
        assert!((t_big / t_small - 10.0).abs() < 1e-9);
    }

    #[test]
    fn universal_threshold_empty_is_zero() {
        assert_eq!(universal_threshold(&[]), 0.0);
    }

    #[test]
    fn sparsity_counts_zeros() {
        assert_eq!(sparsity(&[0.0, 1.0, 0.0, 2.0]), 0.5);
        assert_eq!(sparsity(&[]), 0.0);
        assert_eq!(sparsity(&[0.0; 4]), 1.0);
    }

    #[test]
    fn thresholding_increases_sparsity() {
        let mut c: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin()).collect();
        let before = sparsity(&c);
        hard_threshold(&mut c, 0.5);
        assert!(sparsity(&c) > before);
    }
}
