//! Lifting-scheme implementation of the CDF(2,2) / LeGall 5/3 wavelet.
//!
//! The convolution form in [`transform`](crate::transform) is what the
//! Mallat diagram in the paper describes, but for the biorthogonal CDF(2,2)
//! basis the lifting factorization is both faster and gives exact perfect
//! reconstruction without worrying about filter alignment:
//!
//! 1. *Split* the signal into even and odd samples.
//! 2. *Predict*: `d[i] = odd[i] - (even[i] + even[i+1]) / 2`.
//! 3. *Update*:  `a[i] = even[i] + (d[i-1] + d[i]) / 4`.
//!
//! The inverse just replays the steps backwards. Out-of-range neighbours use
//! symmetric extension, matching the common JPEG-2000 convention.

/// Result of a single-level CDF(2,2) lifting analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LiftingDecomposition {
    /// Approximation (low-pass) band, length `ceil(n / 2)`.
    pub approx: Vec<f64>,
    /// Detail (high-pass) band, length `floor(n / 2)`.
    pub detail: Vec<f64>,
    /// Original signal length.
    pub original_len: usize,
}

/// Forward CDF(2,2) lifting transform (single level).
///
/// # Panics
/// Panics if the signal is empty.
pub fn cdf22_forward(signal: &[f64]) -> LiftingDecomposition {
    let n = signal.len();
    assert!(n > 0, "cdf22_forward: empty signal");
    let n_even = n.div_ceil(2);
    let n_odd = n / 2;
    let mut approx: Vec<f64> = (0..n_even).map(|i| signal[2 * i]).collect();
    let mut detail: Vec<f64> = (0..n_odd).map(|i| signal[2 * i + 1]).collect();

    // Predict step: detail becomes the prediction error of the odd samples.
    for i in 0..n_odd {
        let left = approx[i];
        let right = if i + 1 < n_even {
            approx[i + 1]
        } else {
            approx[i]
        };
        detail[i] -= 0.5 * (left + right);
    }
    // Update step: approximation becomes a smoothed version of the evens.
    for i in 0..n_even {
        let left = if i > 0 {
            detail[i - 1]
        } else if n_odd > 0 {
            detail[0]
        } else {
            0.0
        };
        let right = if i < n_odd {
            detail[i]
        } else if n_odd > 0 {
            detail[n_odd - 1]
        } else {
            0.0
        };
        approx[i] += 0.25 * (left + right);
    }
    LiftingDecomposition {
        approx,
        detail,
        original_len: n,
    }
}

/// Inverse CDF(2,2) lifting transform (single level); exact inverse of
/// [`cdf22_forward`].
pub fn cdf22_inverse(decomposition: &LiftingDecomposition) -> Vec<f64> {
    let n = decomposition.original_len;
    let n_even = n.div_ceil(2);
    let n_odd = n / 2;
    let mut approx = decomposition.approx.clone();
    let mut detail = decomposition.detail.clone();

    // Undo update.
    for i in 0..n_even {
        let left = if i > 0 {
            detail[i - 1]
        } else if n_odd > 0 {
            detail[0]
        } else {
            0.0
        };
        let right = if i < n_odd {
            detail[i]
        } else if n_odd > 0 {
            detail[n_odd - 1]
        } else {
            0.0
        };
        approx[i] -= 0.25 * (left + right);
    }
    // Undo predict.
    for i in 0..n_odd {
        let left = approx[i];
        let right = if i + 1 < n_even {
            approx[i + 1]
        } else {
            approx[i]
        };
        detail[i] += 0.5 * (left + right);
    }
    // Interleave.
    let mut out = vec![0.0; n];
    for i in 0..n_even {
        out[2 * i] = approx[i];
    }
    for i in 0..n_odd {
        out[2 * i + 1] = detail[i];
    }
    out
}

/// Multi-level forward lifting transform: repeatedly decompose the
/// approximation band. Returns the coarsest approximation plus the detail
/// bands (finest first), mirroring
/// [`MultiLevelDecomposition`](crate::transform::MultiLevelDecomposition).
pub fn cdf22_wavedec(signal: &[f64], levels: usize) -> (Vec<f64>, Vec<LiftingDecomposition>) {
    let mut approx = signal.to_vec();
    let mut steps = Vec::with_capacity(levels);
    for _ in 0..levels {
        if approx.len() < 2 {
            break;
        }
        let dec = cdf22_forward(&approx);
        approx = dec.approx.clone();
        steps.push(dec);
    }
    (approx, steps)
}

/// Inverse of [`cdf22_wavedec`].
pub fn cdf22_waverec(steps: &[LiftingDecomposition]) -> Vec<f64> {
    if steps.is_empty() {
        return Vec::new();
    }
    // Rebuild from the coarsest level down, re-injecting stored details.
    let mut current = steps.last().unwrap().approx.clone();
    for step in steps.iter().rev() {
        let dec = LiftingDecomposition {
            approx: current,
            detail: step.detail.clone(),
            original_len: step.original_len,
        };
        current = cdf22_inverse(&dec);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_perfect_reconstruction_even_length() {
        let signal: Vec<f64> = (0..16).map(|i| ((i * 31) % 13) as f64 - 6.0).collect();
        let dec = cdf22_forward(&signal);
        let rec = cdf22_inverse(&dec);
        for (a, b) in signal.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn single_level_perfect_reconstruction_odd_length() {
        let signal: Vec<f64> = (0..17).map(|i| (i as f64 * 0.7).sin()).collect();
        let dec = cdf22_forward(&signal);
        assert_eq!(dec.approx.len(), 9);
        assert_eq!(dec.detail.len(), 8);
        let rec = cdf22_inverse(&dec);
        for (a, b) in signal.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn detail_of_linear_ramp_is_zero() {
        // CDF(2,2) has 2 vanishing moments: linear signals have zero detail.
        let signal: Vec<f64> = (0..20).map(|i| 3.0 * i as f64 + 1.0).collect();
        let dec = cdf22_forward(&signal);
        for &d in &dec.detail[..dec.detail.len() - 1] {
            assert!(d.abs() < 1e-12, "detail {d} should vanish on a ramp");
        }
    }

    #[test]
    fn approximation_of_constant_is_constant() {
        let signal = vec![7.0; 12];
        let dec = cdf22_forward(&signal);
        for &a in &dec.approx {
            assert!((a - 7.0).abs() < 1e-12);
        }
        for &d in &dec.detail {
            assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn multilevel_roundtrip() {
        let signal: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.11).cos() * 4.0 + ((i * 7) % 5) as f64)
            .collect();
        let (_, steps) = cdf22_wavedec(&signal, 4);
        assert_eq!(steps.len(), 4);
        let rec = cdf22_waverec(&steps);
        assert_eq!(rec.len(), signal.len());
        for (a, b) in signal.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn wavedec_stops_when_too_short() {
        let signal = vec![1.0, 2.0, 3.0];
        let (approx, steps) = cdf22_wavedec(&signal, 10);
        assert!(steps.len() < 10);
        assert!(!approx.is_empty());
        let rec = cdf22_waverec(&steps);
        for (a, b) in signal.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn single_sample_signal_is_its_own_approximation() {
        let dec = cdf22_forward(&[42.0]);
        assert_eq!(dec.approx, vec![42.0]);
        assert!(dec.detail.is_empty());
        assert_eq!(cdf22_inverse(&dec), vec![42.0]);
    }

    #[test]
    fn impulse_energy_is_attenuated_in_approximation() {
        let mut signal = vec![0.0; 32];
        signal[15] = 1.0;
        let dec = cdf22_forward(&signal);
        let approx_max = dec.approx.iter().cloned().fold(f64::MIN, f64::max);
        assert!(approx_max < 1.0);
    }
}
