//! Wavelet families and their published filter coefficients.
//!
//! The paper highlights the "flexibility of choosing basis" (§III-B) and
//! uses the Cohen–Daubechies–Feauveau (2,2) biorthogonal wavelet for its
//! experiments (§V-B). We provide the families most commonly paired with
//! WaveCluster-style grid smoothing.

use crate::filter::FilterBank;

/// Supported wavelet families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wavelet {
    /// Haar wavelet (Daubechies-1): shortest orthogonal filter, 2 taps.
    Haar,
    /// Daubechies-2 (often called D4): 4-tap orthogonal filter.
    Daubechies2,
    /// Daubechies-3 (D6): 6-tap orthogonal filter.
    Daubechies3,
    /// Cohen–Daubechies–Feauveau (2,2) biorthogonal wavelet, also known as
    /// the LeGall 5/3 wavelet. This is the basis the paper uses for AdaWave.
    Cdf22,
    /// Cohen–Daubechies–Feauveau (1,3) biorthogonal wavelet; low-pass
    /// analysis identical to Haar but with a wider synthesis support.
    Cdf13,
}

/// 1/sqrt(2), the normalization used by orthonormal filter banks.
const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

impl Wavelet {
    /// All supported families, useful for ablation sweeps.
    pub const ALL: [Wavelet; 5] = [
        Wavelet::Haar,
        Wavelet::Daubechies2,
        Wavelet::Daubechies3,
        Wavelet::Cdf22,
        Wavelet::Cdf13,
    ];

    /// Short lowercase name (e.g. for CLI arguments and bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            Wavelet::Haar => "haar",
            Wavelet::Daubechies2 => "db2",
            Wavelet::Daubechies3 => "db3",
            Wavelet::Cdf22 => "cdf22",
            Wavelet::Cdf13 => "cdf13",
        }
    }

    /// Parse a family from its [`name`](Self::name). Returns `None` for
    /// unknown names.
    pub fn from_name(name: &str) -> Option<Wavelet> {
        match name.to_ascii_lowercase().as_str() {
            "haar" | "db1" => Some(Wavelet::Haar),
            "db2" | "d4" | "daubechies2" => Some(Wavelet::Daubechies2),
            "db3" | "d6" | "daubechies3" => Some(Wavelet::Daubechies3),
            "cdf22" | "bior2.2" | "legall53" | "cdf(2,2)" => Some(Wavelet::Cdf22),
            "cdf13" | "bior1.3" | "cdf(1,3)" => Some(Wavelet::Cdf13),
            _ => None,
        }
    }

    /// Whether the family is orthogonal (analysis and synthesis filters are
    /// time-reversals of each other); biorthogonal families are not.
    pub fn is_orthogonal(&self) -> bool {
        matches!(
            self,
            Wavelet::Haar | Wavelet::Daubechies2 | Wavelet::Daubechies3
        )
    }

    /// Analysis/synthesis filter bank for this family.
    pub fn filter_bank(&self) -> FilterBank {
        match self {
            Wavelet::Haar => {
                let dec_lo = vec![INV_SQRT2, INV_SQRT2];
                FilterBank::orthogonal(dec_lo)
            }
            Wavelet::Daubechies2 => {
                // Standard db2 (D4) coefficients.
                let s = 4.0 * std::f64::consts::SQRT_2;
                let r3 = 3.0f64.sqrt();
                let dec_lo = vec![
                    (1.0 + r3) / s,
                    (3.0 + r3) / s,
                    (3.0 - r3) / s,
                    (1.0 - r3) / s,
                ];
                FilterBank::orthogonal(dec_lo)
            }
            Wavelet::Daubechies3 => {
                // Standard db3 (D6) coefficients (orthonormal convention).
                let dec_lo = vec![
                    0.332_670_552_950_082_6,
                    0.806_891_509_311_092_3,
                    0.459_877_502_118_491_4,
                    -0.135_011_020_010_254_6,
                    -0.085_441_273_882_026_7,
                    0.035_226_291_885_709_5,
                ];
                FilterBank::orthogonal(dec_lo)
            }
            Wavelet::Cdf22 => {
                // LeGall 5/3 analysis/synthesis filters, sqrt(2) normalized.
                // Analysis low-pass  (5 taps): [-1/8, 1/4, 3/4, 1/4, -1/8] * sqrt(2)
                // Analysis high-pass (3 taps): [-1/2, 1, -1/2] / sqrt(2)
                // Synthesis low-pass (3 taps): [ 1/2, 1,  1/2] / sqrt(2)
                // Synthesis high-pass(5 taps): [-1/8, -1/4, 3/4, -1/4, -1/8] * sqrt(2)
                let s2 = std::f64::consts::SQRT_2;
                let dec_lo = vec![-0.125 * s2, 0.25 * s2, 0.75 * s2, 0.25 * s2, -0.125 * s2];
                let dec_hi = vec![-0.5 / s2, 1.0 / s2, -0.5 / s2];
                let rec_lo = vec![0.5 / s2, 1.0 / s2, 0.5 / s2];
                let rec_hi = vec![-0.125 * s2, -0.25 * s2, 0.75 * s2, -0.25 * s2, -0.125 * s2];
                FilterBank::biorthogonal(dec_lo, dec_hi, rec_lo, rec_hi)
            }
            Wavelet::Cdf13 => {
                // CDF(1,3): analysis low-pass has 6 taps, high-pass 2 taps.
                let s2 = std::f64::consts::SQRT_2;
                let dec_lo = vec![
                    -1.0 / 16.0 * s2,
                    1.0 / 16.0 * s2,
                    0.5 * s2,
                    0.5 * s2,
                    1.0 / 16.0 * s2,
                    -1.0 / 16.0 * s2,
                ];
                let dec_hi = vec![-0.5 * s2, 0.5 * s2];
                let rec_lo = vec![0.5 * s2, 0.5 * s2];
                let rec_hi = vec![
                    -1.0 / 16.0 * s2,
                    -1.0 / 16.0 * s2,
                    0.5 * s2,
                    -0.5 * s2,
                    1.0 / 16.0 * s2,
                    1.0 / 16.0 * s2,
                ];
                FilterBank::biorthogonal(dec_lo, dec_hi, rec_lo, rec_hi)
            }
        }
    }

    /// The low-pass analysis filter normalized to unit sum. This is the
    /// smoothing kernel AdaWave applies to sparse grid densities: unit sum
    /// keeps the relative density scale of the grid comparable across
    /// wavelet families and decomposition levels.
    pub fn density_smoothing_kernel(&self) -> Vec<f64> {
        let bank = self.filter_bank();
        let sum: f64 = bank.dec_lo().iter().sum();
        bank.dec_lo().iter().map(|c| c / sum).collect()
    }
}

impl std::fmt::Display for Wavelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for w in Wavelet::ALL {
            assert_eq!(Wavelet::from_name(w.name()), Some(w));
        }
        assert_eq!(Wavelet::from_name("nope"), None);
        assert_eq!(Wavelet::from_name("BIOR2.2"), Some(Wavelet::Cdf22));
    }

    #[test]
    fn orthogonal_lowpass_sums_to_sqrt2() {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies3] {
            let bank = w.filter_bank();
            let sum: f64 = bank.dec_lo().iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-10,
                "{w}: sum {sum}"
            );
        }
    }

    #[test]
    fn orthogonal_lowpass_has_unit_energy() {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies3] {
            let bank = w.filter_bank();
            let energy: f64 = bank.dec_lo().iter().map(|c| c * c).sum();
            assert!((energy - 1.0).abs() < 1e-10, "{w}: energy {energy}");
        }
    }

    #[test]
    fn orthogonal_highpass_sums_to_zero() {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies3] {
            let bank = w.filter_bank();
            let sum: f64 = bank.dec_hi().iter().sum();
            assert!(sum.abs() < 1e-10, "{w}: sum {sum}");
        }
    }

    #[test]
    fn cdf22_highpass_kills_constants_and_lowpass_is_symmetric() {
        let bank = Wavelet::Cdf22.filter_bank();
        let hi_sum: f64 = bank.dec_hi().iter().sum();
        assert!(hi_sum.abs() < 1e-12);
        let lo = bank.dec_lo();
        for i in 0..lo.len() {
            assert!((lo[i] - lo[lo.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf22_highpass_kills_linear_ramps() {
        // A (2,2) biorthogonal wavelet has two vanishing moments: the
        // analysis high-pass filter annihilates constants and linear ramps.
        let bank = Wavelet::Cdf22.filter_bank();
        let hi = bank.dec_hi();
        let moment1: f64 = hi.iter().enumerate().map(|(k, c)| k as f64 * c).sum();
        assert!(moment1.abs() < 1e-12);
    }

    #[test]
    fn density_kernel_sums_to_one() {
        for w in Wavelet::ALL {
            let k = w.density_smoothing_kernel();
            let sum: f64 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{w}");
        }
    }

    #[test]
    fn filter_lengths_match_published_values() {
        assert_eq!(Wavelet::Haar.filter_bank().dec_lo().len(), 2);
        assert_eq!(Wavelet::Daubechies2.filter_bank().dec_lo().len(), 4);
        assert_eq!(Wavelet::Daubechies3.filter_bank().dec_lo().len(), 6);
        assert_eq!(Wavelet::Cdf22.filter_bank().dec_lo().len(), 5);
        assert_eq!(Wavelet::Cdf22.filter_bank().dec_hi().len(), 3);
    }

    #[test]
    fn db2_filter_is_orthogonal_to_even_shifts() {
        // <h, h shifted by 2> = 0 for orthonormal Daubechies filters.
        let h = Wavelet::Daubechies2.filter_bank().dec_lo().to_vec();
        let mut inner = 0.0;
        for i in 0..h.len() - 2 {
            inner += h[i] * h[i + 2];
        }
        assert!(inner.abs() < 1e-12);
    }
}
