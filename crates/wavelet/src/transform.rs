//! Single-level and multi-level 1-D discrete wavelet transforms
//! (the Mallat pyramid algorithm, Fig. 3 of the paper).

use crate::{BoundaryMode, FilterBank, Result, WaveletError};

/// Single-level analysis: split `signal` into (approximation, detail)
/// coefficient vectors, each of length `ceil(n / 2)`.
///
/// `a[i] = Σ_t dec_lo[t] · x[2i + t]` and
/// `d[i] = Σ_t dec_hi[t] · x[2i + t]`, with out-of-range samples supplied by
/// the chosen [`BoundaryMode`].
///
/// # Panics
/// Panics if `signal` is empty.
pub fn dwt1d(signal: &[f64], bank: &FilterBank, mode: BoundaryMode) -> (Vec<f64>, Vec<f64>) {
    assert!(!signal.is_empty(), "dwt1d: empty signal");
    let half = signal.len().div_ceil(2);
    let mut approx = vec![0.0; half];
    let mut detail = vec![0.0; half];
    for i in 0..half {
        let base = 2 * i as isize;
        let mut a = 0.0;
        for (t, &h) in bank.dec_lo().iter().enumerate() {
            a += h * mode.sample(signal, base + t as isize);
        }
        approx[i] = a;
        let mut d = 0.0;
        for (t, &g) in bank.dec_hi().iter().enumerate() {
            d += g * mode.sample(signal, base + t as isize);
        }
        detail[i] = d;
    }
    (approx, detail)
}

/// Low-pass-only analysis: compute just the approximation coefficients.
///
/// AdaWave discards the detail coefficients entirely (§IV-B), so the grid
/// smoothing path only needs this half of the filter bank. The `kernel` is
/// an arbitrary low-pass filter (normally
/// [`Wavelet::density_smoothing_kernel`](crate::Wavelet::density_smoothing_kernel)).
pub fn dwt1d_lowpass(signal: &[f64], kernel: &[f64], mode: BoundaryMode) -> Vec<f64> {
    assert!(!signal.is_empty(), "dwt1d_lowpass: empty signal");
    let half = signal.len().div_ceil(2);
    let mut approx = vec![0.0; half];
    for (i, out) in approx.iter_mut().enumerate() {
        let base = 2 * i as isize;
        let mut a = 0.0;
        for (t, &h) in kernel.iter().enumerate() {
            a += h * mode.sample(signal, base + t as isize);
        }
        *out = a;
    }
    approx
}

/// Single-level synthesis for **orthogonal** filter banks with periodic
/// extension: rebuild a signal of length `output_len` from its
/// approximation and detail coefficients.
///
/// For orthogonal banks the synthesis operator is the adjoint of the
/// analysis operator, i.e. `x[2i + t] += rec_lo[t]·a[i] + rec_hi[t]·d[i]`
/// with periodic wrapping. Perfect reconstruction holds when `output_len`
/// is even; odd lengths are reconstructed approximately (the trailing
/// sample is shared).
///
/// # Panics
/// Panics if `approx` and `detail` have different lengths.
pub fn idwt1d(approx: &[f64], detail: &[f64], bank: &FilterBank, output_len: usize) -> Vec<f64> {
    assert_eq!(
        approx.len(),
        detail.len(),
        "idwt1d: approx/detail length mismatch"
    );
    let n = output_len as isize;
    let mut out = vec![0.0; output_len];
    if output_len == 0 {
        return out;
    }
    for i in 0..approx.len() {
        let base = 2 * i as isize;
        for (t, &h) in bank.rec_lo().iter().enumerate() {
            let k = (base + t as isize).rem_euclid(n) as usize;
            out[k] += h * approx[i];
        }
        for (t, &g) in bank.rec_hi().iter().enumerate() {
            let k = (base + t as isize).rem_euclid(n) as usize;
            out[k] += g * detail[i];
        }
    }
    out
}

/// Centered low-pass smoothing + downsample by two.
///
/// Unlike [`dwt1d_lowpass`] (which uses the causal filter phase of the
/// Mallat recursion), the kernel here is centred on the retained sample:
/// `out[i] = Σ_t kernel[t] · x[2i + t - (len-1)/2]`. This keeps cell `c` of
/// a quantized grid aligned with cell `c >> 1` of the smoothed grid, which
/// is what the grid-clustering lookup tables assume.
pub fn smooth_downsample(signal: &[f64], kernel: &[f64], mode: BoundaryMode) -> Vec<f64> {
    assert!(!signal.is_empty(), "smooth_downsample: empty signal");
    let offset = (kernel.len() as isize - 1) / 2;
    let half = signal.len().div_ceil(2);
    let mut approx = vec![0.0; half];
    for (i, out) in approx.iter_mut().enumerate() {
        let base = 2 * i as isize - offset;
        let mut a = 0.0;
        for (t, &h) in kernel.iter().enumerate() {
            a += h * mode.sample(signal, base + t as isize);
        }
        *out = a;
    }
    approx
}

/// A multi-level Mallat decomposition: the final approximation plus the
/// detail bands for every level (level 0 = finest).
#[derive(Debug, Clone)]
pub struct MultiLevelDecomposition {
    /// Approximation (scale-space) coefficients at the coarsest level.
    pub approx: Vec<f64>,
    /// Detail (wavelet-space) coefficients, `details[0]` being the finest
    /// level (first decomposition step).
    pub details: Vec<Vec<f64>>,
    /// Original signal length, needed for reconstruction.
    pub original_len: usize,
}

impl MultiLevelDecomposition {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Total energy (sum of squares) across all coefficient bands.
    pub fn total_energy(&self) -> f64 {
        let approx_e: f64 = self.approx.iter().map(|c| c * c).sum();
        let detail_e: f64 = self
            .details
            .iter()
            .flat_map(|d| d.iter())
            .map(|c| c * c)
            .sum();
        approx_e + detail_e
    }
}

/// Maximum number of useful decomposition levels for a signal of length `n`
/// with a filter of length `filter_len`.
pub fn max_levels(n: usize, filter_len: usize) -> usize {
    if n < filter_len || filter_len < 2 {
        return 0;
    }
    let mut levels = 0;
    let mut len = n;
    while len >= filter_len {
        len = len.div_ceil(2);
        levels += 1;
    }
    levels
}

/// Multi-level analysis ("wavedec"): repeatedly split the approximation
/// band, `levels` times.
///
/// Returns [`WaveletError::TooManyLevels`] if the signal is too short for
/// the requested depth, and [`WaveletError::SignalTooShort`] for an empty
/// signal.
pub fn wavedec(
    signal: &[f64],
    bank: &FilterBank,
    mode: BoundaryMode,
    levels: usize,
) -> Result<MultiLevelDecomposition> {
    if signal.is_empty() {
        return Err(WaveletError::SignalTooShort {
            len: 0,
            required: 1,
        });
    }
    let max = max_levels(signal.len(), bank.dec_lo().len());
    if levels > max {
        return Err(WaveletError::TooManyLevels {
            requested: levels,
            max,
        });
    }
    let mut approx = signal.to_vec();
    let mut details = Vec::with_capacity(levels);
    for _ in 0..levels {
        let (a, d) = dwt1d(&approx, bank, mode);
        details.push(d);
        approx = a;
    }
    Ok(MultiLevelDecomposition {
        approx,
        details,
        original_len: signal.len(),
    })
}

/// Multi-level synthesis ("waverec") for orthogonal banks with periodic
/// extension; inverse of [`wavedec`].
pub fn waverec(decomposition: &MultiLevelDecomposition, bank: &FilterBank) -> Vec<f64> {
    let mut lengths = Vec::with_capacity(decomposition.levels() + 1);
    // Recompute the band lengths produced by wavedec.
    let mut len = decomposition.original_len;
    for _ in 0..decomposition.levels() {
        lengths.push(len);
        len = len.div_ceil(2);
    }
    let mut approx = decomposition.approx.clone();
    for (level, detail) in decomposition.details.iter().enumerate().rev() {
        let target_len = lengths[level];
        approx = idwt1d(&approx, detail, bank, target_len);
    }
    approx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Wavelet;

    fn reconstruct_error(signal: &[f64], wavelet: Wavelet) -> f64 {
        let bank = wavelet.filter_bank();
        let (a, d) = dwt1d(signal, &bank, BoundaryMode::Periodic);
        let rebuilt = idwt1d(&a, &d, &bank, signal.len());
        signal
            .iter()
            .zip(rebuilt.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn haar_of_constant_signal_has_zero_detail() {
        let signal = vec![5.0; 8];
        let bank = Wavelet::Haar.filter_bank();
        let (a, d) = dwt1d(&signal, &bank, BoundaryMode::Periodic);
        assert_eq!(a.len(), 4);
        assert!(d.iter().all(|&x| x.abs() < 1e-12));
        // Approximation of a constant is the constant times sqrt(2).
        for &c in &a {
            assert!((c - 5.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
        }
    }

    #[test]
    fn haar_known_coefficients() {
        let signal = vec![1.0, 3.0, 2.0, 8.0];
        let bank = Wavelet::Haar.filter_bank();
        let (a, d) = dwt1d(&signal, &bank, BoundaryMode::Periodic);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((a[0] - (1.0 + 3.0) * s).abs() < 1e-12);
        assert!((a[1] - (2.0 + 8.0) * s).abs() < 1e-12);
        assert!((d[0] - (1.0 - 3.0) * s).abs() < 1e-12);
        assert!((d[1] - (2.0 - 8.0) * s).abs() < 1e-12);
    }

    #[test]
    fn perfect_reconstruction_orthogonal_families() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * 37) % 11) as f64 - 3.0).collect();
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies3] {
            let err = reconstruct_error(&signal, w);
            assert!(err < 1e-10, "{w}: reconstruction error {err}");
        }
    }

    #[test]
    fn energy_conservation_orthogonal() {
        let signal: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.3).sin() * 2.0 + 1.0)
            .collect();
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies3] {
            let bank = w.filter_bank();
            let (a, d) = dwt1d(&signal, &bank, BoundaryMode::Periodic);
            let sig_e: f64 = signal.iter().map(|x| x * x).sum();
            let coeff_e: f64 = a.iter().chain(d.iter()).map(|x| x * x).sum();
            assert!(
                (sig_e - coeff_e).abs() < 1e-8 * sig_e,
                "{w}: {sig_e} vs {coeff_e}"
            );
        }
    }

    #[test]
    fn odd_length_signal_produces_half_rounded_up() {
        let signal = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let bank = Wavelet::Haar.filter_bank();
        let (a, d) = dwt1d(&signal, &bank, BoundaryMode::Zero);
        assert_eq!(a.len(), 3);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn lowpass_only_matches_full_transform() {
        let signal: Vec<f64> = (0..16).map(|i| (i % 5) as f64).collect();
        let bank = Wavelet::Daubechies2.filter_bank();
        let (a, _) = dwt1d(&signal, &bank, BoundaryMode::Zero);
        let a_only = dwt1d_lowpass(&signal, bank.dec_lo(), BoundaryMode::Zero);
        for (x, y) in a.iter().zip(a_only.iter()) {
            assert!((x - y).abs() < 1e-14);
        }
    }

    #[test]
    fn cdf22_lowpass_smooths_impulse_noise() {
        // A unit impulse (isolated noisy grid) spreads and shrinks, while a
        // flat dense block keeps its level: the de-noising behaviour the
        // paper relies on.
        let mut impulse = vec![0.0; 16];
        impulse[7] = 1.0;
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let smoothed = dwt1d_lowpass(&impulse, &kernel, BoundaryMode::Zero);
        let max_after = smoothed.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max_after < 1.0,
            "impulse should be attenuated, got {max_after}"
        );

        let block = vec![1.0; 16];
        let smoothed_block = dwt1d_lowpass(&block, &kernel, BoundaryMode::Periodic);
        for &v in &smoothed_block {
            assert!((v - 1.0).abs() < 1e-12, "flat block should stay flat");
        }
    }

    #[test]
    fn smooth_downsample_is_phase_aligned() {
        // A spike at even index c should produce its maximum response at
        // output index c / 2 when the kernel is centered.
        let mut signal = vec![0.0; 32];
        signal[20] = 1.0;
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let out = smooth_downsample(&signal, &kernel, BoundaryMode::Zero);
        let argmax = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(argmax, 10);
    }

    #[test]
    fn smooth_downsample_preserves_flat_signal() {
        let signal = vec![2.0; 20];
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let out = smooth_downsample(&signal, &kernel, BoundaryMode::Periodic);
        assert_eq!(out.len(), 10);
        for &v in &out {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn smooth_downsample_haar_is_pairwise_average() {
        let signal = vec![1.0, 3.0, 5.0, 7.0];
        let kernel = Wavelet::Haar.density_smoothing_kernel(); // [0.5, 0.5]
        let out = smooth_downsample(&signal, &kernel, BoundaryMode::Zero);
        assert_eq!(out, vec![2.0, 6.0]);
    }

    #[test]
    fn wavedec_levels_and_lengths() {
        let signal: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let bank = Wavelet::Haar.filter_bank();
        let dec = wavedec(&signal, &bank, BoundaryMode::Periodic, 3).unwrap();
        assert_eq!(dec.levels(), 3);
        assert_eq!(dec.details[0].len(), 16);
        assert_eq!(dec.details[1].len(), 8);
        assert_eq!(dec.details[2].len(), 4);
        assert_eq!(dec.approx.len(), 4);
    }

    #[test]
    fn wavedec_waverec_roundtrip() {
        let signal: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.21).cos() * 3.0 + (i % 7) as f64)
            .collect();
        let bank = Wavelet::Daubechies2.filter_bank();
        for levels in 1..=3 {
            let dec = wavedec(&signal, &bank, BoundaryMode::Periodic, levels).unwrap();
            let rec = waverec(&dec, &bank);
            assert_eq!(rec.len(), signal.len());
            for (x, y) in signal.iter().zip(rec.iter()) {
                assert!((x - y).abs() < 1e-9, "levels={levels}");
            }
        }
    }

    #[test]
    fn wavedec_rejects_too_many_levels() {
        let signal = vec![1.0, 2.0, 3.0, 4.0];
        let bank = Wavelet::Haar.filter_bank();
        assert!(matches!(
            wavedec(&signal, &bank, BoundaryMode::Periodic, 10),
            Err(WaveletError::TooManyLevels { .. })
        ));
    }

    #[test]
    fn wavedec_rejects_empty_signal() {
        let bank = Wavelet::Haar.filter_bank();
        assert!(matches!(
            wavedec(&[], &bank, BoundaryMode::Periodic, 1),
            Err(WaveletError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn max_levels_examples() {
        assert_eq!(max_levels(0, 2), 0);
        assert_eq!(max_levels(1, 2), 0);
        assert_eq!(max_levels(2, 2), 1);
        assert_eq!(max_levels(8, 2), 3);
        assert_eq!(max_levels(8, 4), 2);
        assert_eq!(max_levels(3, 4), 0);
    }

    #[test]
    fn total_energy_matches_signal_energy_for_orthogonal() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * 13) % 17) as f64 - 8.0).collect();
        let bank = Wavelet::Haar.filter_bank();
        let dec = wavedec(&signal, &bank, BoundaryMode::Periodic, 4).unwrap();
        let sig_e: f64 = signal.iter().map(|x| x * x).sum();
        assert!((dec.total_energy() - sig_e).abs() < 1e-8 * sig_e);
    }
}
