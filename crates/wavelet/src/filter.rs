//! Filter banks: the quadruple of analysis/synthesis low/high-pass filters
//! that defines a discrete wavelet transform in the Mallat formulation.

/// A two-channel filter bank.
///
/// `dec_*` are the analysis (decomposition) filters applied before
/// downsampling; `rec_*` are the synthesis (reconstruction) filters applied
/// after upsampling. For orthogonal wavelets the synthesis filters are the
/// time-reversed analysis filters.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterBank {
    dec_lo: Vec<f64>,
    dec_hi: Vec<f64>,
    rec_lo: Vec<f64>,
    rec_hi: Vec<f64>,
    orthogonal: bool,
}

impl FilterBank {
    /// Build an orthogonal filter bank from its low-pass analysis filter.
    ///
    /// The high-pass analysis filter is the quadrature mirror
    /// `g[k] = (-1)^k h[L-1-k]`, and the synthesis filters equal the
    /// analysis filters (the inverse transform handles the time reversal).
    pub fn orthogonal(dec_lo: Vec<f64>) -> Self {
        let l = dec_lo.len();
        let dec_hi: Vec<f64> = (0..l)
            .map(|k| {
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                sign * dec_lo[l - 1 - k]
            })
            .collect();
        Self {
            rec_lo: dec_lo.clone(),
            rec_hi: dec_hi.clone(),
            dec_lo,
            dec_hi,
            orthogonal: true,
        }
    }

    /// Build a biorthogonal filter bank from explicit analysis and synthesis
    /// filters.
    pub fn biorthogonal(
        dec_lo: Vec<f64>,
        dec_hi: Vec<f64>,
        rec_lo: Vec<f64>,
        rec_hi: Vec<f64>,
    ) -> Self {
        Self {
            dec_lo,
            dec_hi,
            rec_lo,
            rec_hi,
            orthogonal: false,
        }
    }

    /// Analysis low-pass filter.
    pub fn dec_lo(&self) -> &[f64] {
        &self.dec_lo
    }

    /// Analysis high-pass filter.
    pub fn dec_hi(&self) -> &[f64] {
        &self.dec_hi
    }

    /// Synthesis low-pass filter.
    pub fn rec_lo(&self) -> &[f64] {
        &self.rec_lo
    }

    /// Synthesis high-pass filter.
    pub fn rec_hi(&self) -> &[f64] {
        &self.rec_hi
    }

    /// Whether this bank was constructed as orthogonal.
    pub fn is_orthogonal(&self) -> bool {
        self.orthogonal
    }

    /// Length of the longest filter in the bank.
    pub fn max_len(&self) -> usize {
        self.dec_lo
            .len()
            .max(self.dec_hi.len())
            .max(self.rec_lo.len())
            .max(self.rec_hi.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthogonal_qmf_relation() {
        let h = vec![0.1, 0.2, 0.3, 0.4];
        let bank = FilterBank::orthogonal(h.clone());
        // g[k] = (-1)^k h[L-1-k]
        assert_eq!(bank.dec_hi(), &[0.4, -0.3, 0.2, -0.1]);
        assert_eq!(bank.rec_lo(), h.as_slice());
        assert!(bank.is_orthogonal());
    }

    #[test]
    fn biorthogonal_keeps_given_filters() {
        let bank = FilterBank::biorthogonal(
            vec![1.0, 2.0, 1.0],
            vec![1.0, -1.0],
            vec![0.5, 0.5],
            vec![1.0, -2.0, 1.0],
        );
        assert_eq!(bank.dec_lo(), &[1.0, 2.0, 1.0]);
        assert_eq!(bank.rec_hi(), &[1.0, -2.0, 1.0]);
        assert!(!bank.is_orthogonal());
        assert_eq!(bank.max_len(), 3);
    }
}
