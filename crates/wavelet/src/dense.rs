//! Dense d-dimensional grids and separable wavelet transforms over them.
//!
//! The original WaveCluster algorithm (the paper's §III-A2 and the
//! WaveCluster baseline) materializes the full quantized feature space as a
//! dense array and convolves it along one dimension at a time. This module
//! provides that array type plus the separable transform; the memory-frugal
//! sparse path lives in `adawave-grid`/`adawave-core`.

use adawave_runtime::Runtime;

use crate::{dwt1d, dwt1d_lowpass, BoundaryMode, FilterBank, Result, WaveletError};

/// Lanes per parallel work unit of the `*_with` axis transforms. Fixed
/// (independent of the thread count) so the per-lane outputs are produced
/// and scattered in exactly the same order for every [`Runtime`].
const LANE_CHUNK: usize = 32;

/// A dense d-dimensional array of `f64` in row-major order (the last axis
/// varies fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrid {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl DenseGrid {
    /// Create a grid of zeros with the given shape.
    ///
    /// # Panics
    /// Panics if the shape is empty or any axis has length 0.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "DenseGrid: empty shape");
        assert!(shape.iter().all(|&s| s > 0), "DenseGrid: zero-length axis");
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Create a grid from a flat buffer.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if shape.is_empty() || data.len() != expected {
            return Err(WaveletError::ShapeMismatch {
                context: "from_vec: data length does not match shape product",
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Grid shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has no cells (never true for a validly constructed grid).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the flat buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Flat index of a multi-index.
    ///
    /// # Panics
    /// Panics (in debug builds) if the index is out of range.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut flat = 0;
        for (i, (&x, &s)) in idx.iter().zip(self.shape.iter()).enumerate() {
            debug_assert!(x < s, "index {x} out of range for axis {i} (len {s})");
            flat = flat * s + x;
        }
        flat
    }

    /// Value at a multi-index.
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.flat_index(idx)]
    }

    /// Set the value at a multi-index.
    pub fn set(&mut self, idx: &[usize], value: f64) {
        let flat = self.flat_index(idx);
        self.data[flat] = value;
    }

    /// Add `value` at a multi-index.
    pub fn add(&mut self, idx: &[usize], value: f64) {
        let flat = self.flat_index(idx);
        self.data[flat] += value;
    }

    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Number of cells strictly greater than `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.data.iter().filter(|&&v| v > threshold).count()
    }

    /// Iterate over (lane start offsets, stride) pairs for walking the grid
    /// along `axis`: each lane is a 1-D signal of length `shape[axis]` whose
    /// elements are `data[start + k * stride]`.
    fn lanes(&self, axis: usize) -> (Vec<usize>, usize) {
        let ndim = self.ndim();
        assert!(axis < ndim, "axis {axis} out of range");
        // stride of `axis` in row-major order
        let stride: usize = self.shape[axis + 1..].iter().product();
        let axis_len = self.shape[axis];
        let mut starts = Vec::with_capacity(self.len() / axis_len);
        // Enumerate all index combinations with the chosen axis fixed to 0.
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = stride;
        for o in 0..outer {
            for i in 0..inner {
                starts.push(o * axis_len * stride + i);
            }
        }
        (starts, stride)
    }

    /// Gather the lane starting at `start` (stride `stride`) into `lane`.
    #[inline]
    fn read_lane(&self, start: usize, stride: usize, lane: &mut [f64]) {
        for (k, v) in lane.iter_mut().enumerate() {
            *v = self.data[start + k * stride];
        }
    }

    /// Run `f` over every lane along `axis` on `runtime`, returning the
    /// per-lane outputs in lane order. Lanes are independent 1-D signals,
    /// so the outputs are identical for every thread count. This is the
    /// one chunked-lane fan-out every `*_with` transform shares.
    fn transform_lanes<O, F>(&self, axis: usize, runtime: Runtime, f: F) -> Vec<O>
    where
        O: Send,
        F: Fn(&[f64]) -> O + Sync,
    {
        let axis_len = self.shape[axis];
        let (starts, stride) = self.lanes(axis);
        runtime
            .par_chunks(&starts, LANE_CHUNK, |_, chunk| {
                if stride == 1 {
                    // Contiguous lanes (the innermost axis): hand the
                    // transform a direct slice of the grid. Skipping the
                    // gather is bit-identical — `f` sees the same values —
                    // and lets its convolution loops run over unit-stride
                    // memory the compiler can vectorize.
                    chunk
                        .iter()
                        .map(|&start| f(&self.data[start..start + axis_len]))
                        .collect::<Vec<O>>()
                } else {
                    let mut lane = vec![0.0; axis_len];
                    chunk
                        .iter()
                        .map(|&start| {
                            self.read_lane(start, stride, &mut lane);
                            f(&lane)
                        })
                        .collect::<Vec<O>>()
                }
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// [`transform_lanes`](Self::transform_lanes) for single-output lane
    /// transforms: scatter each transformed lane (of length `new_len`)
    /// into a grid whose axis was resized to `new_len`, sequentially in
    /// lane order.
    fn map_lanes_with<F>(&self, axis: usize, new_len: usize, runtime: Runtime, f: F) -> DenseGrid
    where
        F: Fn(&[f64]) -> Vec<f64> + Sync,
    {
        let mut new_shape = self.shape.clone();
        new_shape[axis] = new_len;
        let mut out = DenseGrid::zeros(&new_shape);
        let (new_starts, new_stride) = out.lanes(axis);
        let transformed: Vec<Vec<f64>> = self.transform_lanes(axis, runtime, f);
        for (lane_out, &new_start) in transformed.iter().zip(new_starts.iter()) {
            if new_stride == 1 {
                // Contiguous scatter for the innermost axis.
                out.data[new_start..new_start + lane_out.len()].copy_from_slice(lane_out);
            } else {
                for (k, &v) in lane_out.iter().enumerate() {
                    out.data[new_start + k * new_stride] = v;
                }
            }
        }
        out
    }

    /// Apply a single-level full DWT along one axis, returning the
    /// approximation and detail grids (the axis length becomes
    /// `ceil(len / 2)` in both).
    pub fn dwt_axis(
        &self,
        axis: usize,
        bank: &FilterBank,
        mode: BoundaryMode,
    ) -> (DenseGrid, DenseGrid) {
        self.dwt_axis_with(axis, bank, mode, Runtime::sequential())
    }

    /// [`dwt_axis`](Self::dwt_axis) with the lanes (independent rows /
    /// columns of the grid) fanned out over `runtime`. Each lane transform
    /// is independent, so the result is identical for every thread count.
    pub fn dwt_axis_with(
        &self,
        axis: usize,
        bank: &FilterBank,
        mode: BoundaryMode,
        runtime: Runtime,
    ) -> (DenseGrid, DenseGrid) {
        let new_len = self.shape[axis].div_ceil(2);
        let mut new_shape = self.shape.clone();
        new_shape[axis] = new_len;
        let mut approx = DenseGrid::zeros(&new_shape);
        let mut detail = DenseGrid::zeros(&new_shape);

        let (new_starts, new_stride) = approx.lanes(axis);
        let transformed: Vec<(Vec<f64>, Vec<f64>)> =
            self.transform_lanes(axis, runtime, |lane| dwt1d(lane, bank, mode));
        for ((a, d), &new_start) in transformed.iter().zip(new_starts.iter()) {
            if new_stride == 1 {
                // Contiguous scatter for the innermost axis.
                approx.data[new_start..new_start + a.len()].copy_from_slice(a);
                detail.data[new_start..new_start + d.len()].copy_from_slice(d);
            } else {
                for (k, &v) in a.iter().enumerate() {
                    approx.data[new_start + k * new_stride] = v;
                }
                for (k, &v) in d.iter().enumerate() {
                    detail.data[new_start + k * new_stride] = v;
                }
            }
        }
        (approx, detail)
    }

    /// Apply the low-pass branch only along one axis (what WaveCluster /
    /// AdaWave keep), using an arbitrary smoothing kernel.
    pub fn lowpass_axis(&self, axis: usize, kernel: &[f64], mode: BoundaryMode) -> DenseGrid {
        self.lowpass_axis_with(axis, kernel, mode, Runtime::sequential())
    }

    /// [`lowpass_axis`](Self::lowpass_axis) with the lanes fanned out over
    /// `runtime`.
    pub fn lowpass_axis_with(
        &self,
        axis: usize,
        kernel: &[f64],
        mode: BoundaryMode,
        runtime: Runtime,
    ) -> DenseGrid {
        let new_len = self.shape[axis].div_ceil(2);
        self.map_lanes_with(axis, new_len, runtime, |lane| {
            dwt1d_lowpass(lane, kernel, mode)
        })
    }

    /// Separable low-pass transform along every axis (one level): the
    /// "average signal" subband `L…L` that grid clustering operates on.
    pub fn lowpass_all_axes(&self, kernel: &[f64], mode: BoundaryMode) -> DenseGrid {
        self.lowpass_all_axes_with(kernel, mode, Runtime::sequential())
    }

    /// [`lowpass_all_axes`](Self::lowpass_all_axes) with every axis pass
    /// fanned out over `runtime`.
    pub fn lowpass_all_axes_with(
        &self,
        kernel: &[f64],
        mode: BoundaryMode,
        runtime: Runtime,
    ) -> DenseGrid {
        let mut current = self.clone();
        for axis in 0..self.ndim() {
            current = current.lowpass_axis_with(axis, kernel, mode, runtime);
        }
        current
    }

    /// Centered smoothing + downsample along one axis (see
    /// [`crate::transform::smooth_downsample`]). Keeps cell `c` aligned with
    /// cell `c >> 1` of the output, which grid-clustering lookup tables rely
    /// on.
    pub fn smooth_axis(&self, axis: usize, kernel: &[f64], mode: BoundaryMode) -> DenseGrid {
        self.smooth_axis_with(axis, kernel, mode, Runtime::sequential())
    }

    /// [`smooth_axis`](Self::smooth_axis) with the lanes fanned out over
    /// `runtime`.
    pub fn smooth_axis_with(
        &self,
        axis: usize,
        kernel: &[f64],
        mode: BoundaryMode,
        runtime: Runtime,
    ) -> DenseGrid {
        let new_len = self.shape[axis].div_ceil(2);
        self.map_lanes_with(axis, new_len, runtime, |lane| {
            crate::transform::smooth_downsample(lane, kernel, mode)
        })
    }

    /// Centered smoothing + downsample along every axis (one level).
    pub fn smooth_all_axes(&self, kernel: &[f64], mode: BoundaryMode) -> DenseGrid {
        self.smooth_all_axes_with(kernel, mode, Runtime::sequential())
    }

    /// [`smooth_all_axes`](Self::smooth_all_axes) with every axis pass
    /// fanned out over `runtime`.
    pub fn smooth_all_axes_with(
        &self,
        kernel: &[f64],
        mode: BoundaryMode,
        runtime: Runtime,
    ) -> DenseGrid {
        let mut current = self.clone();
        for axis in 0..self.ndim() {
            current = current.smooth_axis_with(axis, kernel, mode, runtime);
        }
        current
    }
}

/// The four subbands of a single-level 2-D DWT (Fig. 5 of the paper).
#[derive(Debug, Clone)]
pub struct Subbands2d {
    /// Average signal (low-pass in both dimensions) — the clustering space.
    pub ll: DenseGrid,
    /// Horizontal features (low-pass in x, high-pass in y).
    pub lh: DenseGrid,
    /// Vertical features (high-pass in x, low-pass in y).
    pub hl: DenseGrid,
    /// Diagonal features (high-pass in both).
    pub hh: DenseGrid,
}

/// Single-level 2-D DWT of a 2-D grid, producing the four standard
/// subbands. Returns an error if the grid is not 2-dimensional.
pub fn dwt2d(grid: &DenseGrid, bank: &FilterBank, mode: BoundaryMode) -> Result<Subbands2d> {
    if grid.ndim() != 2 {
        return Err(WaveletError::ShapeMismatch {
            context: "dwt2d: grid must be 2-dimensional",
        });
    }
    // Convolve along x (axis 0), then along y (axis 1).
    let (lo_x, hi_x) = grid.dwt_axis(0, bank, mode);
    let (ll, lh) = lo_x.dwt_axis(1, bank, mode);
    let (hl, hh) = hi_x.dwt_axis(1, bank, mode);
    Ok(Subbands2d { ll, lh, hl, hh })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Wavelet;

    #[test]
    fn zeros_shape_and_len() {
        let g = DenseGrid::zeros(&[3, 4, 5]);
        assert_eq!(g.shape(), &[3, 4, 5]);
        assert_eq!(g.len(), 60);
        assert_eq!(g.ndim(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(DenseGrid::from_vec(&[2, 3], vec![0.0; 6]).is_ok());
        assert!(DenseGrid::from_vec(&[2, 3], vec![0.0; 5]).is_err());
        assert!(DenseGrid::from_vec(&[], vec![]).is_err());
    }

    #[test]
    fn get_set_add_roundtrip() {
        let mut g = DenseGrid::zeros(&[2, 3]);
        g.set(&[1, 2], 5.0);
        g.add(&[1, 2], 2.0);
        assert_eq!(g.get(&[1, 2]), 7.0);
        assert_eq!(g.get(&[0, 0]), 0.0);
        assert_eq!(g.total(), 7.0);
        assert_eq!(g.count_above(0.0), 1);
    }

    #[test]
    fn row_major_flat_index() {
        let g = DenseGrid::zeros(&[2, 3, 4]);
        assert_eq!(g.flat_index(&[0, 0, 0]), 0);
        assert_eq!(g.flat_index(&[0, 0, 3]), 3);
        assert_eq!(g.flat_index(&[0, 1, 0]), 4);
        assert_eq!(g.flat_index(&[1, 0, 0]), 12);
        assert_eq!(g.flat_index(&[1, 2, 3]), 23);
    }

    #[test]
    fn dwt_axis_halves_that_axis_only() {
        let g = DenseGrid::zeros(&[8, 6]);
        let bank = Wavelet::Haar.filter_bank();
        let (a, d) = g.dwt_axis(0, &bank, BoundaryMode::Periodic);
        assert_eq!(a.shape(), &[4, 6]);
        assert_eq!(d.shape(), &[4, 6]);
        let (a2, _) = g.dwt_axis(1, &bank, BoundaryMode::Periodic);
        assert_eq!(a2.shape(), &[8, 3]);
    }

    #[test]
    fn axis_transform_matches_manual_1d_on_each_lane() {
        // A 2-row grid where each row is a simple ramp; transforming along
        // axis 1 must equal applying dwt1d to each row separately.
        let rows = [
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            vec![2.0, 0.0, 2.0, 0.0, 2.0, 0.0, 2.0, 0.0],
        ];
        let mut g = DenseGrid::zeros(&[2, 8]);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                g.set(&[i, j], v);
            }
        }
        let bank = Wavelet::Haar.filter_bank();
        let (a, d) = g.dwt_axis(1, &bank, BoundaryMode::Periodic);
        for (i, row) in rows.iter().enumerate() {
            let (ar, dr) = dwt1d(row, &bank, BoundaryMode::Periodic);
            for j in 0..4 {
                assert!((a.get(&[i, j]) - ar[j]).abs() < 1e-12);
                assert!((d.get(&[i, j]) - dr[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn contiguous_lane_fast_path_is_bit_identical_to_gather() {
        // Axis 1 of a 2-D grid has stride 1 (the contiguous fast path);
        // axis 0 is strided (the gather path). Both must equal — bit for
        // bit — a reference that extracts each lane with get() and runs
        // the plain 1-D transforms, for every boundary mode and wavelet.
        let mut g = DenseGrid::zeros(&[7, 9]);
        let mut x = 0.37_f64;
        for i in 0..7 {
            for j in 0..9 {
                x = (x * 97.0 + 0.31).fract();
                g.set(&[i, j], x * 10.0 - 5.0);
            }
        }
        for wavelet in [Wavelet::Haar, Wavelet::Cdf22, Wavelet::Daubechies2] {
            let bank = wavelet.filter_bank();
            for mode in [BoundaryMode::Zero, BoundaryMode::Periodic] {
                for axis in [0usize, 1] {
                    let (a, d) = g.dwt_axis(axis, &bank, mode);
                    let lanes = g.shape()[1 - axis];
                    let lane_len = g.shape()[axis];
                    for lane_idx in 0..lanes {
                        let lane: Vec<f64> = (0..lane_len)
                            .map(|k| {
                                let mut idx = [0usize; 2];
                                idx[axis] = k;
                                idx[1 - axis] = lane_idx;
                                g.get(&idx)
                            })
                            .collect();
                        let (ar, dr) = dwt1d(&lane, &bank, mode);
                        let kernel = wavelet.density_smoothing_kernel();
                        let lr = crate::dwt1d_lowpass(&lane, &kernel, mode);
                        let low = g.lowpass_axis(axis, &kernel, mode);
                        for k in 0..lane_len.div_ceil(2) {
                            let mut idx = [0usize; 2];
                            idx[axis] = k;
                            idx[1 - axis] = lane_idx;
                            assert_eq!(
                                a.get(&idx).to_bits(),
                                ar[k].to_bits(),
                                "{wavelet} {mode:?} axis {axis} approx"
                            );
                            assert_eq!(
                                d.get(&idx).to_bits(),
                                dr[k].to_bits(),
                                "{wavelet} {mode:?} axis {axis} detail"
                            );
                            assert_eq!(
                                low.get(&idx).to_bits(),
                                lr[k].to_bits(),
                                "{wavelet} {mode:?} axis {axis} lowpass"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lowpass_all_axes_halves_every_axis() {
        let g = DenseGrid::zeros(&[8, 8, 8]);
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let out = g.lowpass_all_axes(&kernel, BoundaryMode::Zero);
        assert_eq!(out.shape(), &[4, 4, 4]);
    }

    #[test]
    fn lowpass_preserves_flat_density_with_periodic_extension() {
        let mut g = DenseGrid::zeros(&[8, 8]);
        for v in g.as_mut_slice() {
            *v = 3.0;
        }
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let out = g.lowpass_all_axes(&kernel, BoundaryMode::Periodic);
        for &v in out.as_slice() {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dwt2d_produces_four_half_size_subbands() {
        let mut g = DenseGrid::zeros(&[16, 12]);
        g.set(&[3, 5], 10.0);
        g.set(&[8, 8], 4.0);
        let bank = Wavelet::Haar.filter_bank();
        let sub = dwt2d(&g, &bank, BoundaryMode::Periodic).unwrap();
        assert_eq!(sub.ll.shape(), &[8, 6]);
        assert_eq!(sub.lh.shape(), &[8, 6]);
        assert_eq!(sub.hl.shape(), &[8, 6]);
        assert_eq!(sub.hh.shape(), &[8, 6]);
        // Energy is conserved across the four subbands for orthogonal banks.
        let orig_e: f64 = g.as_slice().iter().map(|x| x * x).sum();
        let sub_e: f64 = [&sub.ll, &sub.lh, &sub.hl, &sub.hh]
            .iter()
            .flat_map(|s| s.as_slice().iter())
            .map(|x| x * x)
            .sum();
        assert!((orig_e - sub_e).abs() < 1e-9 * orig_e);
    }

    #[test]
    fn dwt2d_rejects_non_2d() {
        let g = DenseGrid::zeros(&[4, 4, 4]);
        let bank = Wavelet::Haar.filter_bank();
        assert!(dwt2d(&g, &bank, BoundaryMode::Zero).is_err());
    }

    #[test]
    fn smooth_all_axes_keeps_blocks_aligned_with_halved_coordinates() {
        // A dense block at [16..24) x [16..24) must map onto [8..12) x [8..12)
        // of the smoothed grid (coordinates exactly halved), so that the
        // point-to-cluster lookup (c >> 1) lands inside the smoothed block.
        let mut g = DenseGrid::zeros(&[32, 32]);
        for i in 16..24 {
            for j in 16..24 {
                g.set(&[i, j], 10.0);
            }
        }
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let out = g.smooth_all_axes(&kernel, BoundaryMode::Zero);
        assert_eq!(out.shape(), &[16, 16]);
        // Interior of the mapped block keeps the full density.
        assert!(out.get(&[10, 10]) > 8.0);
        // Cells well outside stay near zero.
        assert!(out.get(&[4, 4]).abs() < 1e-9);
    }

    #[test]
    fn smooth_axis_halves_only_that_axis() {
        let g = DenseGrid::zeros(&[8, 6]);
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let out = g.smooth_axis(1, &kernel, BoundaryMode::Zero);
        assert_eq!(out.shape(), &[8, 3]);
    }

    #[test]
    fn parallel_axis_transforms_match_sequential() {
        // A grid with enough lanes to split across workers; every `*_with`
        // variant must agree with its sequential counterpart exactly.
        let mut g = DenseGrid::zeros(&[96, 80]);
        for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f64) * 0.37).sin() * 5.0;
        }
        let bank = Wavelet::Daubechies2.filter_bank();
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        for threads in [2, 5] {
            let rt = Runtime::with_threads(threads);
            for axis in 0..2 {
                let (a_seq, d_seq) = g.dwt_axis(axis, &bank, BoundaryMode::Periodic);
                let (a_par, d_par) = g.dwt_axis_with(axis, &bank, BoundaryMode::Periodic, rt);
                assert_eq!(a_seq, a_par, "dwt approx axis {axis} threads {threads}");
                assert_eq!(d_seq, d_par, "dwt detail axis {axis} threads {threads}");
                assert_eq!(
                    g.lowpass_axis(axis, &kernel, BoundaryMode::Zero),
                    g.lowpass_axis_with(axis, &kernel, BoundaryMode::Zero, rt),
                );
                assert_eq!(
                    g.smooth_axis(axis, &kernel, BoundaryMode::Zero),
                    g.smooth_axis_with(axis, &kernel, BoundaryMode::Zero, rt),
                );
            }
            assert_eq!(
                g.smooth_all_axes(&kernel, BoundaryMode::Zero),
                g.smooth_all_axes_with(&kernel, BoundaryMode::Zero, rt),
            );
            assert_eq!(
                g.lowpass_all_axes(&kernel, BoundaryMode::Periodic),
                g.lowpass_all_axes_with(&kernel, BoundaryMode::Periodic, rt),
            );
        }
    }

    #[test]
    fn dense_cluster_stands_out_after_lowpass() {
        // Mimics Fig. 5: a dense block survives smoothing, isolated noise
        // cells are attenuated relative to it.
        let mut g = DenseGrid::zeros(&[32, 32]);
        for i in 8..16 {
            for j in 8..16 {
                g.set(&[i, j], 10.0);
            }
        }
        // scattered noise
        for (i, j) in [(1, 30), (29, 2), (20, 25), (3, 3)] {
            g.set(&[i, j], 10.0);
        }
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let out = g.lowpass_all_axes(&kernel, BoundaryMode::Zero);
        // The centre of the block keeps a high value...
        assert!(out.get(&[6, 6]) > 5.0);
        // ...while the isolated noise cells end up well below it.
        assert!(out.get(&[10, 12]) < 5.0);
    }
}
