//! Property-based tests for the wavelet substrate.

use adawave_wavelet::lifting::{cdf22_forward, cdf22_inverse, cdf22_wavedec, cdf22_waverec};
use adawave_wavelet::{
    dwt1d, hard_threshold, idwt1d, soft_threshold, wavedec, waverec, BoundaryMode, DenseGrid,
    Wavelet,
};
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 2..max_len)
}

/// Even-length signals, where periodic orthogonal DWT is exactly invertible.
fn even_signal_strategy(max_half: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..max_half)
        .prop_map(|pairs| pairs.into_iter().flat_map(|(a, b)| [a, b]).collect())
}

proptest! {
    #[test]
    fn orthogonal_roundtrip_even_signals(signal in even_signal_strategy(64)) {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies3] {
            let bank = w.filter_bank();
            let (a, d) = dwt1d(&signal, &bank, BoundaryMode::Periodic);
            let rec = idwt1d(&a, &d, &bank, signal.len());
            for (x, y) in signal.iter().zip(rec.iter()) {
                prop_assert!((x - y).abs() < 1e-8, "{w}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn orthogonal_energy_conservation(signal in even_signal_strategy(64)) {
        let bank = Wavelet::Haar.filter_bank();
        let (a, d) = dwt1d(&signal, &bank, BoundaryMode::Periodic);
        let sig_e: f64 = signal.iter().map(|x| x * x).sum();
        let coef_e: f64 = a.iter().chain(d.iter()).map(|x| x * x).sum();
        prop_assert!((sig_e - coef_e).abs() <= 1e-8 * (1.0 + sig_e));
    }

    #[test]
    fn lifting_roundtrip_any_length(signal in signal_strategy(200)) {
        let dec = cdf22_forward(&signal);
        let rec = cdf22_inverse(&dec);
        prop_assert_eq!(rec.len(), signal.len());
        for (x, y) in signal.iter().zip(rec.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn lifting_multilevel_roundtrip(signal in signal_strategy(128), levels in 1usize..5) {
        let (_, steps) = cdf22_wavedec(&signal, levels);
        let rec = cdf22_waverec(&steps);
        if !steps.is_empty() {
            prop_assert_eq!(rec.len(), signal.len());
            for (x, y) in signal.iter().zip(rec.iter()) {
                prop_assert!((x - y).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn lifting_band_lengths(signal in signal_strategy(200)) {
        let dec = cdf22_forward(&signal);
        prop_assert_eq!(dec.approx.len(), signal.len().div_ceil(2));
        prop_assert_eq!(dec.detail.len(), signal.len() / 2);
    }

    #[test]
    fn wavedec_waverec_roundtrip(signal in even_signal_strategy(48), levels in 1usize..4) {
        let bank = Wavelet::Haar.filter_bank();
        let max = adawave_wavelet::transform::max_levels(signal.len(), 2);
        let levels = levels.min(max);
        prop_assume!(levels >= 1);
        // Restrict to power-of-two-compatible lengths by only checking when
        // every intermediate length stays even (otherwise the periodic
        // adjoint is not exactly orthogonal).
        let mut len = signal.len();
        let mut all_even = true;
        for _ in 0..levels {
            if !len.is_multiple_of(2) { all_even = false; break; }
            len /= 2;
        }
        prop_assume!(all_even);
        let dec = wavedec(&signal, &bank, BoundaryMode::Periodic, levels).unwrap();
        let rec = waverec(&dec, &bank);
        for (x, y) in signal.iter().zip(rec.iter()) {
            prop_assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn hard_threshold_never_increases_magnitude(mut coeffs in signal_strategy(100), t in 0.0f64..10.0) {
        let before = coeffs.clone();
        hard_threshold(&mut coeffs, t);
        for (a, b) in coeffs.iter().zip(before.iter()) {
            prop_assert!(a.abs() <= b.abs() + 1e-15);
        }
    }

    #[test]
    fn soft_threshold_shrinks_towards_zero(mut coeffs in signal_strategy(100), t in 0.0f64..10.0) {
        let before = coeffs.clone();
        soft_threshold(&mut coeffs, t);
        for (a, b) in coeffs.iter().zip(before.iter()) {
            prop_assert!(a.abs() <= b.abs() + 1e-15);
            // sign never flips
            prop_assert!(*a == 0.0 || a.signum() == b.signum());
        }
    }

    #[test]
    fn boundary_modes_agree_inside_signal(signal in signal_strategy(64), idx in 0usize..32) {
        prop_assume!(idx < signal.len());
        let z = BoundaryMode::Zero.sample(&signal, idx as isize);
        let p = BoundaryMode::Periodic.sample(&signal, idx as isize);
        let s = BoundaryMode::Symmetric.sample(&signal, idx as isize);
        prop_assert_eq!(z, p);
        prop_assert_eq!(p, s);
    }

    #[test]
    fn dense_lowpass_total_mass_bounded(values in prop::collection::vec(0.0f64..10.0, 64)) {
        // Smoothing with a unit-sum kernel and zero padding can only lose
        // mass at the boundary, never create it.
        let grid = DenseGrid::from_vec(&[8, 8], values).unwrap();
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let out = grid.lowpass_all_axes(&kernel, BoundaryMode::Zero);
        // Negative lobes of CDF(2,2) can slightly overshoot; allow 25% slack.
        prop_assert!(out.total() <= grid.total() * 1.25 + 1e-9);
    }

    #[test]
    fn dwt_output_lengths(signal in signal_strategy(100)) {
        let bank = Wavelet::Daubechies2.filter_bank();
        let (a, d) = dwt1d(&signal, &bank, BoundaryMode::Zero);
        prop_assert_eq!(a.len(), signal.len().div_ceil(2));
        prop_assert_eq!(d.len(), signal.len().div_ceil(2));
    }
}
