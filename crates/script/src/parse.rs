//! The line-oriented scenario-script parser.
//!
//! A script is a sequence of *test plans*, each started by a
//! `marker $$title$$` line and made of one verb per line. `//` and `;`
//! start a comment anywhere outside a quoted string; blank lines are
//! ignored. Every error carries the 1-based line number it was found on.
//!
//! ```text
//! // The paper's headline claim, as an executable scenario.
//! marker $$adawave separates overlapping noisy rings$$
//! generate rings n=1200 noise=50 seed=11
//! fit adawave scale=48
//! assert clusters == 2
//! assert ari >= 0.9
//! assert deterministic threads=1,4
//! ```

use adawave_api::{closest_matches, Params};

/// The `— did you mean ...?` fragment for an unknown name, empty when no
/// known name is close enough (shared with the engine for shape names).
pub(crate) fn did_you_mean<'a>(target: &str, known: impl IntoIterator<Item = &'a str>) -> String {
    let close = closest_matches(target, known);
    if close.is_empty() {
        String::new()
    } else {
        format!(" — did you mean {}?", close.join(" or "))
    }
}

/// The verbs of the language, used for did-you-mean suggestions.
const VERBS: &[&str] = &[
    "assert", "fit", "generate", "ingest", "load", "marker", "merge", "predict", "refit", "save",
];

/// The metric names accepted by `assert <metric> <cmp> <value>`.
const METRICS: &[&str] = &[
    "ami",
    "ari",
    "clusters",
    "dims",
    "noise",
    "noise_points",
    "points",
];

/// A comparison operator in an `assert` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl Cmp {
    fn parse(text: &str) -> Option<Self> {
        match text {
            "==" => Some(Cmp::Eq),
            "!=" => Some(Cmp::Ne),
            "<=" => Some(Cmp::Le),
            ">=" => Some(Cmp::Ge),
            "<" => Some(Cmp::Lt),
            ">" => Some(Cmp::Gt),
            _ => None,
        }
    }

    /// Evaluate `actual <cmp> expected`.
    pub fn eval(self, actual: f64, expected: f64) -> bool {
        match self {
            Cmp::Eq => actual == expected,
            Cmp::Ne => actual != expected,
            Cmp::Le => actual <= expected,
            Cmp::Ge => actual >= expected,
            Cmp::Lt => actual < expected,
            Cmp::Gt => actual > expected,
        }
    }

    /// The source symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Gt => ">",
        }
    }
}

/// A metric of the current clustering that `assert` can compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Adjusted Rand index against the dataset's ground truth (computed
    /// over the points whose true label is not noise — the paper's
    /// protocol).
    Ari,
    /// Adjusted mutual information, same protocol as [`Metric::Ari`].
    Ami,
    /// Number of clusters found.
    Clusters,
    /// Fraction of points labelled noise, in `[0, 1]`.
    Noise,
    /// Number of points labelled noise.
    NoisePoints,
    /// Number of points in the current dataset.
    Points,
    /// Dimensionality of the current dataset.
    Dims,
}

impl Metric {
    fn parse(text: &str) -> Option<Self> {
        match text {
            "ari" => Some(Metric::Ari),
            "ami" => Some(Metric::Ami),
            "clusters" => Some(Metric::Clusters),
            "noise" => Some(Metric::Noise),
            "noise_points" => Some(Metric::NoisePoints),
            "points" => Some(Metric::Points),
            "dims" => Some(Metric::Dims),
            _ => None,
        }
    }

    /// The source name of the metric.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Ari => "ari",
            Metric::Ami => "ami",
            Metric::Clusters => "clusters",
            Metric::Noise => "noise",
            Metric::NoisePoints => "noise_points",
            Metric::Points => "points",
            Metric::Dims => "dims",
        }
    }
}

/// One executable command of the language.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `generate <shape> [key=value ...]` — build a named synthetic scene
    /// (keys: `n`, `k`, `noise`, `seed`) as the current dataset.
    Generate {
        /// Scene name (see `adawave_data::scenes::SHAPES`).
        shape: String,
        /// Scene parameters.
        params: Params,
    },
    /// `load "file.csv"` — load a CSV dataset (features..., label).
    LoadDataset {
        /// Path, resolved against the script's directory when relative.
        path: String,
    },
    /// `fit <algo> [key=value ...] [as <name>]` — fit a registry
    /// algorithm on the current dataset; the labels become the current
    /// clustering and the trained model the current model.
    Fit {
        /// Registry algorithm name.
        algorithm: String,
        /// Algorithm parameters, validated against the registry entry.
        params: Params,
        /// Snapshot the resulting labels under this name.
        save_as: Option<String>,
    },
    /// `ingest [key=value ...]` — stream the current dataset into one or
    /// more `StreamingAdaWave` sessions (`shards=<n>` sessions, batches
    /// of `batch-rows=<n>`), then merge them into one session. With
    /// `shard=<i>/<k>` only the i-th of k contiguous row slices is
    /// ingested (the domain still spans the whole dataset, so sessions
    /// built from different shards merge exactly). The remaining keys are
    /// AdaWave configuration parameters.
    Ingest {
        /// `shards`, `batch-rows`, `shard`, plus AdaWave configuration
        /// keys.
        params: Params,
    },
    /// `refit [as <name>]` — refit the streaming session's grid model;
    /// the per-point labels become the current clustering.
    Refit {
        /// Snapshot the resulting labels under this name.
        save_as: Option<String>,
    },
    /// `save "file.awm"` — persist the current model.
    SaveModel {
        /// Path, resolved against the run's scratch directory when
        /// relative.
        path: String,
    },
    /// `save accumulator "file.awa"` — persist the current streaming
    /// session as a versioned accumulator artifact.
    SaveAccumulator {
        /// Path, resolved against the run's scratch directory when
        /// relative.
        path: String,
    },
    /// `load model "file.awm"` — load a persisted model as the current
    /// model.
    LoadModel {
        /// Path, resolved against the scratch directory (then the
        /// script's directory) when relative.
        path: String,
    },
    /// `load accumulator "file.awa"` — restore a persisted accumulator as
    /// the current streaming session.
    LoadAccumulator {
        /// Path, resolved against the scratch directory (then the
        /// script's directory) when relative.
        path: String,
    },
    /// `merge "file.awa"` — load a persisted accumulator and merge it
    /// into the current streaming session (or adopt it when there is
    /// none), exactly like the in-process shard merge.
    MergeAccumulator {
        /// Path, resolved against the scratch directory (then the
        /// script's directory) when relative.
        path: String,
    },
    /// `predict [as <name>]` — label the current dataset with the
    /// current model (no refitting); the labels become the current
    /// clustering.
    Predict {
        /// Snapshot the resulting labels under this name.
        save_as: Option<String>,
    },
    /// `assert <metric> <cmp> <value>`.
    AssertMetric {
        /// The metric to compute.
        metric: Metric,
        /// The comparison operator.
        cmp: Cmp,
        /// The expected value.
        value: f64,
    },
    /// `assert labels ==|!= labels_from <name>` — compare the current
    /// labels bit-exactly against a snapshot.
    AssertLabels {
        /// `true` for `==`, `false` for `!=`.
        equal: bool,
        /// The snapshot name to compare against.
        name: String,
    },
    /// `assert deterministic threads=<a>,<b>,...` — re-run the last fit
    /// at each thread count and require bit-identical labels.
    AssertDeterministic {
        /// The thread counts to re-run with.
        threads: Vec<usize>,
    },
}

/// One command with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// 1-based source line.
    pub line: usize,
    /// The source text of the line (comment stripped, trimmed).
    pub text: String,
    /// The parsed command.
    pub command: Command,
}

/// A `marker $$...$$` section: one test plan, run in a fresh environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// 1-based source line of the marker (or 1 for an implicit plan).
    pub line: usize,
    /// The marker title.
    pub title: String,
    /// The commands of the plan, in order.
    pub steps: Vec<Step>,
}

/// A parsed scenario script.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// The test plans, in source order.
    pub plans: Vec<Plan>,
}

impl Script {
    /// Every algorithm name mentioned by a `fit` step, in order of first
    /// appearance (the corpus test uses this to check registry coverage).
    pub fn fit_algorithms(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for plan in &self.plans {
            for step in &plan.steps {
                if let Command::Fit { algorithm, .. } = &step.command {
                    if !names.contains(&algorithm.as_str()) {
                        names.push(algorithm);
                    }
                }
            }
        }
        names
    }
}

/// A parse failure, pointing at the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Strip a `//` or `;` comment, ignoring comment markers inside a
/// double-quoted string.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_string = !in_string,
            b';' if !in_string => return &line[..i],
            b'/' if !in_string && bytes.get(i + 1) == Some(&b'/') => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Split a line into whitespace-separated tokens, keeping double-quoted
/// spans (without their quotes) as single tokens.
fn tokenize(line: &str, line_no: usize) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                if !in_string {
                    // Closing quote: the (possibly empty) span is a token.
                    tokens.push(std::mem::take(&mut current));
                    current.clear();
                }
            }
            c if c.is_whitespace() && !in_string => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if in_string {
        return Err(ParseError {
            line: line_no,
            message: "unterminated string (missing closing '\"')".to_string(),
        });
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    Ok(tokens)
}

/// Parse `key=value` tokens (commas also separate pairs) and an optional
/// trailing `as <name>` suffix.
fn parse_params(
    tokens: &[String],
    line: usize,
    allow_as: bool,
) -> Result<(Params, Option<String>), ParseError> {
    let mut params = Params::new();
    let mut save_as = None;
    let mut iter = tokens.iter().peekable();
    while let Some(token) = iter.next() {
        if token == "as" {
            if !allow_as {
                return Err(ParseError {
                    line,
                    message: "'as <name>' is not allowed here".to_string(),
                });
            }
            let name = iter.next().ok_or_else(|| ParseError {
                line,
                message: "'as' needs a snapshot name".to_string(),
            })?;
            if iter.next().is_some() {
                return Err(ParseError {
                    line,
                    message: "'as <name>' must be the last token of the line".to_string(),
                });
            }
            save_as = Some(name.clone());
            break;
        }
        // Commas separate pairs (`scale=48,levels=1`), but a comma whose
        // right-hand side has no `=` belongs to the previous value
        // (`threads=1,4`).
        let mut pairs: Vec<String> = Vec::new();
        for fragment in token.split(',') {
            match pairs.last_mut() {
                Some(last) if !fragment.contains('=') => {
                    last.push(',');
                    last.push_str(fragment);
                }
                _ => pairs.push(fragment.to_string()),
            }
        }
        for pair in pairs.iter().filter(|p| !p.is_empty()) {
            params.set_pair(pair).map_err(|e| ParseError {
                line,
                message: e.to_string(),
            })?;
        }
    }
    Ok((params, save_as))
}

fn error(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse one non-marker command line.
fn parse_command(tokens: &[String], line: usize) -> Result<Command, ParseError> {
    let verb = tokens[0].as_str();
    let rest = &tokens[1..];
    match verb {
        "generate" => {
            let shape = rest
                .first()
                .ok_or_else(|| error(line, "generate needs a shape name (e.g. rings)"))?;
            let (params, _) = parse_params(&rest[1..], line, false)?;
            Ok(Command::Generate {
                shape: shape.clone(),
                params,
            })
        }
        "load" => match rest {
            [path] => Ok(Command::LoadDataset { path: path.clone() }),
            [kw, path] if kw == "model" => Ok(Command::LoadModel { path: path.clone() }),
            [kw, path] if kw == "accumulator" => {
                Ok(Command::LoadAccumulator { path: path.clone() })
            }
            _ => Err(error(
                line,
                "load expects `load \"file.csv\"`, `load model \"file.awm\"`, \
                 or `load accumulator \"file.awa\"`",
            )),
        },
        "fit" => {
            let algorithm = rest
                .first()
                .ok_or_else(|| error(line, "fit needs an algorithm name (e.g. adawave)"))?;
            let (params, save_as) = parse_params(&rest[1..], line, true)?;
            Ok(Command::Fit {
                algorithm: algorithm.clone(),
                params,
                save_as,
            })
        }
        "ingest" => {
            let (params, _) = parse_params(rest, line, false)?;
            Ok(Command::Ingest { params })
        }
        "refit" => {
            let (params, save_as) = parse_params(rest, line, true)?;
            if !params.is_empty() {
                return Err(error(
                    line,
                    "refit takes no parameters (configure the session in `ingest`)",
                ));
            }
            Ok(Command::Refit { save_as })
        }
        "save" => match rest {
            [path] => Ok(Command::SaveModel { path: path.clone() }),
            [kw, path] if kw == "accumulator" => {
                Ok(Command::SaveAccumulator { path: path.clone() })
            }
            _ => Err(error(
                line,
                "save expects `save \"file.awm\"` or `save accumulator \"file.awa\"`",
            )),
        },
        "merge" => match rest {
            [path] => Ok(Command::MergeAccumulator { path: path.clone() }),
            _ => Err(error(line, "merge expects `merge \"file.awa\"`")),
        },
        "predict" => {
            let (params, save_as) = parse_params(rest, line, true)?;
            if !params.is_empty() {
                return Err(error(line, "predict takes no parameters"));
            }
            Ok(Command::Predict { save_as })
        }
        "assert" => parse_assert(rest, line),
        other => Err(error(
            line,
            format!(
                "unknown verb '{other}'{}",
                did_you_mean(other, VERBS.iter().copied())
            ),
        )),
    }
}

/// Parse the tail of an `assert` line.
fn parse_assert(rest: &[String], line: usize) -> Result<Command, ParseError> {
    let subject = rest.first().ok_or_else(|| {
        error(
            line,
            "assert needs a subject (a metric, labels or deterministic)",
        )
    })?;
    match subject.as_str() {
        "labels" => match rest {
            [_, cmp, kw, name] if kw == "labels_from" => {
                let equal = match Cmp::parse(cmp) {
                    Some(Cmp::Eq) => true,
                    Some(Cmp::Ne) => false,
                    _ => {
                        return Err(error(
                            line,
                            format!("labels comparisons accept == or !=, not '{cmp}'"),
                        ))
                    }
                };
                Ok(Command::AssertLabels {
                    equal,
                    name: name.clone(),
                })
            }
            _ => Err(error(
                line,
                "expected `assert labels ==|!= labels_from <name>`",
            )),
        },
        "deterministic" => {
            let (params, _) = parse_params(&rest[1..], line, false)?;
            let raw = params
                .get("threads")
                .ok_or_else(|| error(line, "expected `assert deterministic threads=1,4`"))?;
            let threads = raw
                .split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(|t| {
                    t.parse::<usize>().map_err(|_| {
                        error(
                            line,
                            format!("'{t}' is not a thread count (expected usize)"),
                        )
                    })
                })
                .collect::<Result<Vec<usize>, ParseError>>()?;
            if threads.is_empty() {
                return Err(error(line, "threads= needs at least one thread count"));
            }
            Ok(Command::AssertDeterministic { threads })
        }
        name => {
            let metric = Metric::parse(name).ok_or_else(|| {
                error(
                    line,
                    format!(
                        "unknown metric '{name}'{}",
                        did_you_mean(name, METRICS.iter().copied())
                    ),
                )
            })?;
            let [_, cmp_text, value_text] = rest else {
                return Err(error(
                    line,
                    format!("expected `assert {} <cmp> <value>`", metric.name()),
                ));
            };
            let cmp = Cmp::parse(cmp_text).ok_or_else(|| {
                error(
                    line,
                    format!("unknown comparator '{cmp_text}' (expected ==, !=, <=, >=, < or >)"),
                )
            })?;
            let value = value_text
                .parse::<f64>()
                .map_err(|_| error(line, format!("'{value_text}' is not a number")))?;
            Ok(Command::AssertMetric { metric, cmp, value })
        }
    }
}

/// Parse a whole script. Errors point at the offending 1-based line.
pub fn parse(source: &str) -> Result<Script, ParseError> {
    let mut plans: Vec<Plan> = Vec::new();
    let mut has_markers = false;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix("marker") {
            has_markers = true;
            let rest = rest.trim();
            let title = rest
                .strip_prefix("$$")
                .and_then(|t| t.strip_suffix("$$"))
                .filter(|t| !t.is_empty())
                .ok_or_else(|| {
                    error(
                        line,
                        "marker needs a $$title$$ (e.g. `marker $$noisy rings$$`)",
                    )
                })?;
            if let Some(open) = plans.last() {
                if open.steps.is_empty() {
                    return Err(error(
                        open.line,
                        format!(
                            "test plan '{}' has no steps (truncated script?)",
                            open.title
                        ),
                    ));
                }
            }
            plans.push(Plan {
                line,
                title: title.trim().to_string(),
                steps: Vec::new(),
            });
            continue;
        }
        let tokens = tokenize(text, line)?;
        let command = parse_command(&tokens, line)?;
        let Some(plan) = plans.last_mut() else {
            if has_markers {
                unreachable!("a marker line always opens a plan");
            }
            // Marker-less scripts run as one implicit plan.
            plans.push(Plan {
                line: 1,
                title: "main".to_string(),
                steps: Vec::new(),
            });
            plans.last_mut().expect("just pushed").steps.push(Step {
                line,
                text: text.to_string(),
                command,
            });
            continue;
        };
        plan.steps.push(Step {
            line,
            text: text.to_string(),
            command,
        });
    }
    match plans.last() {
        None => Err(error(1, "the script has no commands")),
        Some(open) if open.steps.is_empty() => Err(error(
            open.line,
            format!(
                "test plan '{}' has no steps (truncated script?)",
                open.title
            ),
        )),
        Some(_) => Ok(Script { plans }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plans_verbs_and_comments() {
        let script = parse(
            "// a comment\n\
             marker $$first plan$$\n\
             generate rings n=1200 noise=50 seed=11 ; trailing comment\n\
             fit adawave scale=48,levels=1 as batch\n\
             assert clusters == 2\n\
             assert ari >= 0.9\n\
             marker $$second plan$$\n\
             generate blobs n=600 k=3\n\
             fit kmeans seed=7\n\
             assert labels == labels_from batch\n\
             assert deterministic threads=1,4\n",
        )
        .unwrap();
        assert_eq!(script.plans.len(), 2);
        assert_eq!(script.plans[0].title, "first plan");
        assert_eq!(script.plans[0].steps.len(), 4);
        assert_eq!(script.plans[1].steps.len(), 4);
        let Command::Fit {
            algorithm,
            params,
            save_as,
        } = &script.plans[0].steps[1].command
        else {
            panic!("expected fit");
        };
        assert_eq!(algorithm, "adawave");
        assert_eq!(params.get("scale"), Some("48"));
        assert_eq!(params.get("levels"), Some("1"));
        assert_eq!(save_as.as_deref(), Some("batch"));
        assert_eq!(
            script.plans[1].steps[3].command,
            Command::AssertDeterministic {
                threads: vec![1, 4]
            }
        );
        assert_eq!(script.fit_algorithms(), vec!["adawave", "kmeans"]);
    }

    #[test]
    fn markerless_script_becomes_one_implicit_plan() {
        let script = parse("generate blobs n=100\nfit kmeans\nassert clusters == 3\n").unwrap();
        assert_eq!(script.plans.len(), 1);
        assert_eq!(script.plans[0].title, "main");
        assert_eq!(script.plans[0].steps.len(), 3);
    }

    #[test]
    fn quoted_paths_survive_spaces_and_comment_chars() {
        let script = parse("load \"my data;1//x.csv\"\nfit kmeans\n").unwrap();
        assert_eq!(
            script.plans[0].steps[0].command,
            Command::LoadDataset {
                path: "my data;1//x.csv".to_string()
            }
        );
        let script = parse("load model \"m.awm\"\npredict\n").unwrap();
        assert_eq!(
            script.plans[0].steps[0].command,
            Command::LoadModel {
                path: "m.awm".to_string()
            }
        );
    }

    #[test]
    fn accumulator_verbs_parse() {
        let script = parse(
            "marker $$shards$$\n\
             generate blobs\n\
             ingest shard=1/2 scale=32\n\
             save accumulator \"s1.awa\"\n\
             load accumulator \"s1.awa\"\n\
             merge \"s2.awa\"\n",
        )
        .unwrap();
        let commands: Vec<&Command> = script.plans[0].steps.iter().map(|s| &s.command).collect();
        assert_eq!(
            commands[2],
            &Command::SaveAccumulator {
                path: "s1.awa".into()
            }
        );
        assert_eq!(
            commands[3],
            &Command::LoadAccumulator {
                path: "s1.awa".into()
            }
        );
        assert_eq!(
            commands[4],
            &Command::MergeAccumulator {
                path: "s2.awa".into()
            }
        );
    }

    #[test]
    fn unknown_verb_reports_line_and_suggestion() {
        let err = parse("marker $$t$$\ngenerate blobs\nfitt kmeans\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("did you mean fit?"), "{err}");
        assert!(err.to_string().starts_with("line 3:"), "{err}");
    }

    #[test]
    fn malformed_verbs_report_their_line() {
        for (source, line, needle) in [
            ("marker $$t$$\nfit\n", 2, "algorithm name"),
            ("marker $$t$$\ngenerate\n", 2, "shape name"),
            ("marker $$t$$\nload\n", 2, "load expects"),
            ("marker $$t$$\nload a.csv b.csv\n", 2, "load expects"),
            ("marker $$t$$\nsave\n", 2, "save expects"),
            ("marker $$t$$\nsave model a.awm\n", 2, "save expects"),
            ("marker $$t$$\nmerge\n", 2, "merge expects"),
            ("marker $$t$$\nmerge a.awa b.awa\n", 2, "merge expects"),
            (
                "marker $$t$$\nload accumulator a.awa b.awa\n",
                2,
                "load expects",
            ),
            ("marker $$t$$\nrefit scale=32\n", 2, "refit takes no"),
            ("marker $$t$$\npredict scale=32\n", 2, "predict takes no"),
            ("marker $$t$$\nfit kmeans as\n", 2, "snapshot name"),
            ("marker $$t$$\nfit kmeans as x y\n", 2, "last token"),
            ("marker $$t$$\ngenerate blobs as x\n", 2, "not allowed"),
            ("marker $$t$$\ngenerate blobs n\n", 2, "key=value"),
        ] {
            let err = parse(source).unwrap_err();
            assert_eq!(err.line, line, "{source:?}: {err}");
            assert!(err.message.contains(needle), "{source:?}: {err}");
        }
    }

    #[test]
    fn bad_asserts_report_their_line() {
        for (source, needle) in [
            ("marker $$t$$\nassert\n", "assert needs a subject"),
            (
                "marker $$t$$\nassert arr >= 0.9\n",
                "did you mean ari or ami?",
            ),
            ("marker $$t$$\nassert ari => 0.9\n", "unknown comparator"),
            ("marker $$t$$\nassert ari >= lots\n", "not a number"),
            ("marker $$t$$\nassert ari >=\n", "expected `assert ari"),
            ("marker $$t$$\nassert labels >= labels_from x\n", "== or !="),
            ("marker $$t$$\nassert labels == other x\n", "labels_from"),
            ("marker $$t$$\nassert deterministic\n", "threads=1,4"),
            (
                "marker $$t$$\nassert deterministic threads=a\n",
                "thread count",
            ),
            (
                "marker $$t$$\nassert deterministic threads=,\n",
                "at least one",
            ),
        ] {
            let err = parse(source).unwrap_err();
            assert_eq!(err.line, 2, "{source:?}: {err}");
            assert!(err.message.contains(needle), "{source:?}: {err}");
        }
    }

    #[test]
    fn truncated_scripts_are_rejected_with_line_numbers() {
        // Empty script.
        let err = parse("// only comments\n").unwrap_err();
        assert!(err.message.contains("no commands"), "{err}");
        // Unterminated marker title.
        let err = parse("marker $$oops\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("$$title$$"), "{err}");
        // Marker with no steps (script cut off mid-plan).
        let err = parse("marker $$a$$\ngenerate blobs\nmarker $$b$$\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("truncated"), "{err}");
        // Unterminated string.
        let err = parse("marker $$a$$\nload \"x.csv\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unterminated string"), "{err}");
    }

    #[test]
    fn cmp_parsing_and_evaluation() {
        for (text, cmp) in [
            ("==", Cmp::Eq),
            ("!=", Cmp::Ne),
            ("<=", Cmp::Le),
            (">=", Cmp::Ge),
            ("<", Cmp::Lt),
            (">", Cmp::Gt),
        ] {
            assert_eq!(Cmp::parse(text), Some(cmp));
            assert_eq!(cmp.symbol(), text);
        }
        assert!(Cmp::Ge.eval(0.9, 0.9));
        assert!(Cmp::Lt.eval(0.1, 0.2));
        assert!(!Cmp::Eq.eval(1.0, 2.0));
        assert!(Cmp::Ne.eval(1.0, 2.0));
    }
}
