//! The scenario-script interpreter.
//!
//! An [`Engine`] holds the long-lived wiring (the algorithm registry, the
//! persistence hooks, path resolution roots); each test plan of a script
//! runs in a fresh session environment — current dataset, current
//! clustering, current model, named label snapshots and the streaming
//! session. A failing step aborts its plan (the remaining steps are
//! skipped) but the following plans still run, soft65c02-tester style.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use adawave_api::{AlgorithmRegistry, AlgorithmSpec, Clustering, Model, Params, PointsView};
use adawave_core::AdaWaveConfig;
use adawave_data::scenes;
use adawave_data::{csv, Dataset};
use adawave_metrics::{adjusted_rand_index, ami, ami_ignoring_noise};
use adawave_stream::{finite_bounds, StreamingAdaWave};

use crate::parse::{did_you_mean, Command, Metric, Plan, Script};

/// Persists the current model to a path (e.g. `adawave::save_model`).
pub type SaveHook = Box<dyn Fn(&Path, &dyn Model) -> Result<(), String>>;

/// Loads a persisted model from a path (e.g. `adawave::load_model`).
pub type LoadHook = Box<dyn Fn(&Path) -> Result<Box<dyn Model>, String>>;

/// The scenario-script interpreter: registry + persistence hooks + path
/// resolution roots. Reused across scripts; every plan gets a fresh
/// session environment.
pub struct Engine {
    registry: AlgorithmRegistry,
    save_hook: Option<SaveHook>,
    load_hook: Option<LoadHook>,
    script_dir: PathBuf,
    scratch_dir: PathBuf,
    scratch_owned: bool,
}

impl Engine {
    /// Build an engine over an algorithm registry. Until
    /// [`with_persistence`](Self::with_persistence) is called, `save` and
    /// `load model` steps fail with an explanatory error; the scratch
    /// directory defaults to a fresh per-engine subdirectory of the
    /// system temp dir (removed on drop).
    pub fn new(registry: AlgorithmRegistry) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let scratch_dir = std::env::temp_dir().join(format!(
            "adawave-script-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        Engine {
            registry,
            save_hook: None,
            load_hook: None,
            script_dir: PathBuf::from("."),
            scratch_dir,
            scratch_owned: true,
        }
    }

    /// Wire the persistence hooks used by `save` and `load model`.
    pub fn with_persistence(mut self, save: SaveHook, load: LoadHook) -> Self {
        self.save_hook = Some(save);
        self.load_hook = Some(load);
        self
    }

    /// Resolve relative `load "file.csv"` paths against this directory
    /// (typically the script file's parent).
    pub fn with_script_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.script_dir = dir.into();
        self
    }

    /// Resolve relative `save`/`load model` paths against this directory
    /// instead of the engine-owned temp scratch (the caller then owns
    /// cleanup).
    pub fn with_scratch_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.scratch_dir = dir.into();
        self.scratch_owned = false;
        self
    }

    /// Run every plan of a script, each in a fresh environment, and
    /// report per-plan outcomes. Assertion and runtime failures land in
    /// the report — this only allocates, it does not error.
    pub fn run(&self, script: &Script) -> RunReport {
        let plans = script
            .plans
            .iter()
            .map(|plan| self.run_plan(plan))
            .collect();
        RunReport { plans }
    }

    fn run_plan(&self, plan: &Plan) -> PlanReport {
        let mut env = Env {
            engine: self,
            dataset: None,
            clustering: None,
            model: None,
            snapshots: BTreeMap::new(),
            stream: None,
            last_fit: None,
        };
        let mut report = PlanReport {
            title: plan.title.clone(),
            line: plan.line,
            steps_total: plan.steps.len(),
            steps_run: 0,
            failure: None,
        };
        for step in &plan.steps {
            match env.run_command(&step.command) {
                Ok(()) => report.steps_run += 1,
                Err(message) => {
                    report.failure = Some(Failure {
                        line: step.line,
                        step: step.text.clone(),
                        message,
                    });
                    break;
                }
            }
        }
        report
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.scratch_owned {
            // Best-effort cleanup of the per-engine scratch directory.
            let _ = std::fs::remove_dir_all(&self.scratch_dir);
        }
    }
}

/// The outcome of running one script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// One report per plan, in script order.
    pub plans: Vec<PlanReport>,
}

/// The outcome of one test plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReport {
    /// The plan's marker title.
    pub title: String,
    /// The marker's 1-based source line.
    pub line: usize,
    /// Number of steps in the plan.
    pub steps_total: usize,
    /// Number of steps that ran successfully.
    pub steps_run: usize,
    /// The failure that aborted the plan, if any.
    pub failure: Option<Failure>,
}

/// A failed step: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// 1-based source line of the failing step.
    pub line: usize,
    /// The source text of the failing step.
    pub step: String,
    /// What went wrong.
    pub message: String,
}

impl RunReport {
    /// Whether every plan passed.
    pub fn passed(&self) -> bool {
        self.plans.iter().all(|p| p.failure.is_none())
    }

    /// Human-readable per-plan pass/fail report with a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut failed = 0;
        for plan in &self.plans {
            match &plan.failure {
                None => out.push_str(&format!(
                    "  plan \"{}\" .. ok ({} steps)\n",
                    plan.title, plan.steps_total
                )),
                Some(f) => {
                    failed += 1;
                    out.push_str(&format!(
                        "  plan \"{}\" .. FAILED at line {} (`{}`): {}\n",
                        plan.title, f.line, f.step, f.message
                    ));
                }
            }
        }
        out.push_str(&format!(
            "  {} plan{}: {} passed, {} failed\n",
            self.plans.len(),
            if self.plans.len() == 1 { "" } else { "s" },
            self.plans.len() - failed,
            failed
        ));
        out
    }
}

/// The per-plan session environment.
struct Env<'a> {
    engine: &'a Engine,
    dataset: Option<Dataset>,
    clustering: Option<Clustering>,
    model: Option<Box<dyn Model>>,
    snapshots: BTreeMap<String, Clustering>,
    stream: Option<StreamingAdaWave>,
    last_fit: Option<AlgorithmSpec>,
}

impl Env<'_> {
    fn dataset(&self) -> Result<&Dataset, String> {
        self.dataset
            .as_ref()
            .ok_or_else(|| "no dataset loaded (use `generate` or `load` first)".to_string())
    }

    fn clustering(&self) -> Result<&Clustering, String> {
        self.clustering
            .as_ref()
            .ok_or_else(|| "no clustering yet (use `fit`, `refit` or `predict` first)".to_string())
    }

    fn snapshot(&mut self, save_as: &Option<String>) {
        if let Some(name) = save_as {
            let clustering = self.clustering.clone().expect("set by the caller");
            self.snapshots.insert(name.clone(), clustering);
        }
    }

    fn run_command(&mut self, command: &Command) -> Result<(), String> {
        match command {
            Command::Generate { shape, params } => self.generate(shape, params),
            Command::LoadDataset { path } => self.load_dataset(path),
            Command::Fit {
                algorithm,
                params,
                save_as,
            } => {
                self.fit(algorithm, params)?;
                self.snapshot(save_as);
                Ok(())
            }
            Command::Ingest { params } => self.ingest(params),
            Command::Refit { save_as } => {
                self.refit()?;
                self.snapshot(save_as);
                Ok(())
            }
            Command::SaveModel { path } => self.save_model(path),
            Command::SaveAccumulator { path } => self.save_accumulator(path),
            Command::LoadModel { path } => self.load_model(path),
            Command::LoadAccumulator { path } => self.load_accumulator(path),
            Command::MergeAccumulator { path } => self.merge_accumulator(path),
            Command::Predict { save_as } => {
                self.predict()?;
                self.snapshot(save_as);
                Ok(())
            }
            Command::AssertMetric { metric, cmp, value } => {
                let actual = self.metric(*metric)?;
                if cmp.eval(actual, *value) {
                    Ok(())
                } else {
                    let shown = match metric {
                        Metric::Clusters | Metric::NoisePoints | Metric::Points | Metric::Dims => {
                            format!("{actual}")
                        }
                        _ => format!("{actual:.4}"),
                    };
                    Err(format!(
                        "assert {} {} {} failed: {} = {}",
                        metric.name(),
                        cmp.symbol(),
                        value,
                        metric.name(),
                        shown
                    ))
                }
            }
            Command::AssertLabels { equal, name } => self.assert_labels(*equal, name),
            Command::AssertDeterministic { threads } => self.assert_deterministic(threads),
        }
    }

    fn generate(&mut self, shape: &str, params: &Params) -> Result<(), String> {
        const KEYS: &[&str] = &["k", "n", "noise", "seed"];
        for key in params.keys() {
            if !KEYS.contains(&key) {
                return Err(format!(
                    "unknown generate parameter '{key}'{}",
                    did_you_mean(key, KEYS.iter().copied())
                ));
            }
        }
        let n: usize = params.get_or("n", 600).map_err(|e| e.to_string())?;
        let k: usize = params.get_or("k", 3).map_err(|e| e.to_string())?;
        let noise: f64 = params.get_or("noise", 0.0).map_err(|e| e.to_string())?;
        let seed: u64 = params.get_or("seed", 7).map_err(|e| e.to_string())?;
        if !(0.0..100.0).contains(&noise) {
            return Err(format!("noise={noise} must be a percentage in [0, 100)"));
        }
        let dataset = scenes::generate(shape, n, k, noise, seed).ok_or_else(|| {
            format!(
                "unknown shape '{shape}'{}",
                did_you_mean(shape, scenes::SHAPES.iter().copied())
            )
        })?;
        self.dataset = Some(dataset);
        Ok(())
    }

    fn load_dataset(&mut self, path: &str) -> Result<(), String> {
        let resolved = resolve(path, &self.engine.script_dir);
        let dataset =
            csv::load_csv(&resolved).map_err(|e| format!("loading {}: {e}", resolved.display()))?;
        self.dataset = Some(dataset);
        Ok(())
    }

    /// Build the fit spec for `fit` and `assert deterministic`: strict
    /// key validation against the registry entry (typos surface the
    /// did-you-mean suggestions), with `k` defaulting to the dataset's
    /// ground-truth cluster count for the algorithms that take it — the
    /// paper's protocol, same as the CLI.
    fn fit_spec(&self, algorithm: &str, params: &Params) -> Result<AlgorithmSpec, String> {
        let entry = self
            .engine
            .registry
            .entry(algorithm)
            .map_err(|e| e.to_string())?;
        entry.validate_keys(params).map_err(|e| e.to_string())?;
        let mut spec = AlgorithmSpec::new(entry.name());
        spec.params = params.clone();
        if entry.accepted_keys().contains(&"k") && params.get("k").is_none() {
            let k = self.dataset()?.cluster_count().max(1);
            spec.params.set("k", k);
        }
        Ok(spec)
    }

    fn fit(&mut self, algorithm: &str, params: &Params) -> Result<(), String> {
        let spec = self.fit_spec(algorithm, params)?;
        let dataset = self.dataset()?;
        let outcome = self
            .engine
            .registry
            .fit_model(&spec, dataset.view())
            .map_err(|e| e.to_string())?;
        self.clustering = Some(outcome.clustering);
        self.model = Some(outcome.model);
        self.last_fit = Some(spec);
        Ok(())
    }

    fn ingest(&mut self, params: &Params) -> Result<(), String> {
        let shards: usize = params.get_or("shards", 1).map_err(|e| e.to_string())?;
        let batch_rows: usize = params
            .get_or("batch-rows", 2048)
            .map_err(|e| e.to_string())?;
        if shards == 0 || batch_rows == 0 {
            return Err("shards and batch-rows must be at least 1".to_string());
        }
        let mut config_params = params.clone();
        config_params.retain_keys(
            &self
                .engine
                .registry
                .entry("adawave")
                .map_err(|e| e.to_string())?
                .accepted_keys(),
        );
        // Everything that is neither a reserved ingest key nor an AdaWave
        // configuration key is a typo.
        let entry = self
            .engine
            .registry
            .entry("adawave")
            .map_err(|e| e.to_string())?;
        let mut accepted = entry.accepted_keys();
        accepted.extend(["shards", "batch-rows", "shard"]);
        for key in params.keys() {
            if !accepted.contains(&key) {
                return Err(format!(
                    "unknown ingest parameter '{key}'{}",
                    did_you_mean(key, accepted.iter().copied())
                ));
            }
        }
        let slice = params.get("shard").map(parse_shard_spec).transpose()?;
        let config = AdaWaveConfig::from_params(&config_params).map_err(|e| e.to_string())?;

        let dataset = self.dataset()?;
        let view = dataset.view();
        let domain = finite_bounds(view).ok_or_else(|| {
            "the dataset has no finite points to freeze a domain from".to_string()
        })?;
        let dims = view.dims();
        let flat = view.as_slice();
        let n = view.len();
        // `shard=i/k` restricts ingestion to the i-th of k contiguous row
        // slices; the domain above still spans the whole dataset, so the
        // sessions written by different shards merge exactly.
        let (lo, hi) = match slice {
            None => (0, n),
            Some((index, count)) => (n * (index - 1) / count, n * index / count),
        };

        // One session per shard over the same frozen domain, each fed its
        // contiguous slice of rows in `batch-rows` batches, then merged in
        // order — so labels line up with the dataset's row order.
        let per_shard = (hi - lo).div_ceil(shards);
        let mut sessions: Vec<StreamingAdaWave> = Vec::new();
        for shard in 0..shards {
            let start = lo + (shard * per_shard).min(hi - lo);
            let end = lo + ((shard + 1) * per_shard).min(hi - lo);
            let mut session = StreamingAdaWave::with_domain(config.clone(), domain.clone())
                .map_err(|e| e.to_string())?;
            let mut row = start;
            while row < end {
                let stop = (row + batch_rows).min(end);
                let batch = PointsView::from_flat(&flat[row * dims..stop * dims], dims)
                    .map_err(|e| e.to_string())?;
                session.ingest(batch).map_err(|e| e.to_string())?;
                row = stop;
            }
            sessions.push(session);
        }
        let mut merged = sessions.remove(0);
        for session in sessions {
            merged
                .merge(session)
                .map_err(|rejected| format!("merge rejected: {}", rejected.error))?;
        }
        self.stream = Some(merged);
        Ok(())
    }

    fn refit(&mut self) -> Result<(), String> {
        let stream = self
            .stream
            .as_ref()
            .ok_or_else(|| "no streaming session (use `ingest` first)".to_string())?;
        let outcome = stream.refit_outcome().map_err(|e| e.to_string())?;
        self.clustering = Some(outcome.clustering);
        self.model = Some(outcome.model);
        Ok(())
    }

    fn save_model(&mut self, path: &str) -> Result<(), String> {
        let model = self
            .model
            .as_deref()
            .ok_or_else(|| "no model to save (use `fit` or `refit` first)".to_string())?;
        let hook = self
            .engine
            .save_hook
            .as_ref()
            .ok_or_else(|| "model persistence is not wired into this engine".to_string())?;
        let resolved = resolve(path, &self.engine.scratch_dir);
        if let Some(parent) = resolved.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
        hook(&resolved, model).map_err(|e| format!("saving {}: {e}", resolved.display()))
    }

    fn load_model(&mut self, path: &str) -> Result<(), String> {
        let hook = self
            .engine
            .load_hook
            .as_ref()
            .ok_or_else(|| "model persistence is not wired into this engine".to_string())?;
        let resolved = self.locate(path);
        let model = hook(&resolved).map_err(|e| format!("loading {}: {e}", resolved.display()))?;
        self.model = Some(model);
        Ok(())
    }

    /// Where a `load`/`merge` path points: round-trips look in the scratch
    /// dir first, fixtures next to the script second.
    fn locate(&self, path: &str) -> PathBuf {
        let resolved = resolve(path, &self.engine.scratch_dir);
        if !resolved.exists() {
            let in_script_dir = resolve(path, &self.engine.script_dir);
            if in_script_dir.exists() {
                return in_script_dir;
            }
        }
        resolved
    }

    fn save_accumulator(&mut self, path: &str) -> Result<(), String> {
        let stream = self
            .stream
            .as_ref()
            .ok_or_else(|| "no streaming session to save (use `ingest` first)".to_string())?;
        let resolved = resolve(path, &self.engine.scratch_dir);
        if let Some(parent) = resolved.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
        adawave_stream::save_accumulator(&resolved, stream)
            .map_err(|e| format!("saving {}: {e}", resolved.display()))
    }

    fn load_accumulator(&mut self, path: &str) -> Result<(), String> {
        let resolved = self.locate(path);
        let stream = adawave_stream::load_accumulator(&resolved)
            .map_err(|e| format!("loading {}: {e}", resolved.display()))?;
        self.stream = Some(stream);
        Ok(())
    }

    /// `merge "file.awa"` — fold a persisted accumulator into the current
    /// streaming session, or adopt it outright when there is none yet.
    fn merge_accumulator(&mut self, path: &str) -> Result<(), String> {
        let resolved = self.locate(path);
        let loaded = adawave_stream::load_accumulator(&resolved)
            .map_err(|e| format!("loading {}: {e}", resolved.display()))?;
        match self.stream.as_mut() {
            None => self.stream = Some(loaded),
            Some(stream) => stream.merge(loaded).map_err(|rejected| {
                format!("merging {}: {}", resolved.display(), rejected.error)
            })?,
        }
        Ok(())
    }

    fn predict(&mut self) -> Result<(), String> {
        let model = self.model.as_deref().ok_or_else(|| {
            "no model to predict with (use `fit` or `load model` first)".to_string()
        })?;
        let dataset = self.dataset()?;
        let clustering = model.predict(dataset.view()).map_err(|e| e.to_string())?;
        self.clustering = Some(clustering);
        Ok(())
    }

    /// Compute a metric of the current clustering (ari/ami score it
    /// against the dataset's ground truth over the points whose true
    /// label is not noise — the paper's evaluation protocol).
    fn metric(&self, metric: Metric) -> Result<f64, String> {
        match metric {
            Metric::Points => Ok(self.dataset()?.len() as f64),
            Metric::Dims => Ok(self.dataset()?.dims() as f64),
            Metric::Clusters => Ok(self.clustering()?.cluster_count() as f64),
            Metric::Noise => Ok(self.clustering()?.noise_fraction()),
            Metric::NoisePoints => Ok(self.clustering()?.noise_count() as f64),
            Metric::Ari | Metric::Ami => {
                let dataset = self.dataset()?;
                let clustering = self.clustering()?;
                if dataset.len() != clustering.len() {
                    return Err(format!(
                        "the clustering labels {} points but the dataset has {} (did the dataset change after the fit?)",
                        clustering.len(),
                        dataset.len()
                    ));
                }
                // Predicted noise becomes a fresh label so it can never
                // collide with a real predicted cluster id.
                let prediction = clustering.to_labels(clustering.cluster_count());
                match (metric, dataset.noise_label) {
                    (Metric::Ami, Some(noise)) => {
                        Ok(ami_ignoring_noise(&dataset.labels, &prediction, noise))
                    }
                    (Metric::Ami, None) => Ok(ami(&dataset.labels, &prediction)),
                    (_, Some(noise)) => {
                        let mut truth = Vec::with_capacity(dataset.len());
                        let mut pred = Vec::with_capacity(dataset.len());
                        for (&t, &p) in dataset.labels.iter().zip(prediction.iter()) {
                            if t != noise {
                                truth.push(t);
                                pred.push(p);
                            }
                        }
                        Ok(adjusted_rand_index(&truth, &pred))
                    }
                    (_, None) => Ok(adjusted_rand_index(&dataset.labels, &prediction)),
                }
            }
        }
    }

    fn assert_labels(&self, equal: bool, name: &str) -> Result<(), String> {
        let current = self.clustering()?;
        let other = self.snapshots.get(name).ok_or_else(|| {
            let known: Vec<&str> = self.snapshots.keys().map(String::as_str).collect();
            if known.is_empty() {
                format!("no labels snapshot named '{name}' (save one with `fit ... as {name}`)")
            } else {
                format!(
                    "no labels snapshot named '{name}' (known: {})",
                    known.join(", ")
                )
            }
        })?;
        let same = current == other;
        if same == equal {
            return Ok(());
        }
        if equal {
            let differing = current
                .assignment()
                .iter()
                .zip(other.assignment().iter())
                .filter(|(a, b)| a != b)
                .count();
            Err(format!(
                "labels differ from '{name}': {differing} of {} points (or the label sets have different sizes)",
                current.len()
            ))
        } else {
            Err(format!("labels are identical to '{name}'"))
        }
    }

    /// Re-run the last fit at each thread count and require bit-identical
    /// labels — the fixed-chunk determinism contract as an assertion.
    fn assert_deterministic(&self, threads: &[usize]) -> Result<(), String> {
        let spec = self
            .last_fit
            .as_ref()
            .ok_or_else(|| "no fit to re-run (use `fit` first)".to_string())?;
        let baseline = self.clustering()?;
        let dataset = self.dataset()?;
        for &t in threads {
            let rerun = spec.clone().with("threads", t);
            let clustering = self
                .engine
                .registry
                .fit(&rerun, dataset.view())
                .map_err(|e| format!("re-running {} with threads={t}: {e}", spec.name))?;
            if &clustering != baseline {
                let differing = clustering
                    .assignment()
                    .iter()
                    .zip(baseline.assignment().iter())
                    .filter(|(a, b)| a != b)
                    .count();
                return Err(format!(
                    "labels changed at threads={t}: {differing} of {} points differ",
                    baseline.len()
                ));
            }
        }
        Ok(())
    }
}

/// Parse a `shard=i/k` ingest value into its 1-based `(index, count)`.
fn parse_shard_spec(spec: &str) -> Result<(usize, usize), String> {
    spec.split_once('/')
        .and_then(|(index, count)| {
            let index: usize = index.trim().parse().ok()?;
            let count: usize = count.trim().parse().ok()?;
            (1 <= index && index <= count).then_some((index, count))
        })
        .ok_or_else(|| {
            format!("bad shard spec '{spec}': expected <i>/<k> with 1 <= i <= k (e.g. shard=2/3)")
        })
}

/// Resolve a script-given path: absolute paths pass through, relative
/// ones are joined onto `root`.
fn resolve(path: &str, root: &Path) -> PathBuf {
    let p = Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        root.join(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn engine() -> Engine {
        let mut registry = AlgorithmRegistry::new();
        adawave_core::register(&mut registry);
        Engine::new(registry)
    }

    fn run(source: &str) -> RunReport {
        engine().run(&parse(source).unwrap())
    }

    #[test]
    fn a_passing_plan_runs_every_step() {
        let report = run("marker $$adawave on clean blobs$$\n\
             generate blobs n=400 k=2 seed=3\n\
             fit adawave scale=16\n\
             assert clusters == 2\n\
             assert ami >= 0.5\n\
             assert noise <= 0.3\n\
             assert points == 400\n\
             assert dims == 2\n");
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.plans[0].steps_run, 7);
        assert!(
            report.render().contains(".. ok (7 steps)"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn a_failing_assert_aborts_the_plan_but_not_the_script() {
        let report = run("marker $$fails$$\n\
             generate blobs n=200 k=2 seed=3\n\
             fit adawave scale=16\n\
             assert points == 7\n\
             assert ari >= 0.0 // never reached\n\
             marker $$still runs$$\n\
             generate blobs n=200 k=2 seed=3\n\
             fit adawave scale=16\n\
             assert points == 200\n");
        assert!(!report.passed());
        let first = &report.plans[0];
        assert_eq!(first.steps_run, 2);
        let failure = first.failure.as_ref().unwrap();
        assert_eq!(failure.line, 4);
        assert!(failure.message.contains("points == 7"), "{failure:?}");
        assert!(report.plans[1].failure.is_none(), "{}", report.render());
        let rendered = report.render();
        assert!(rendered.contains("FAILED at line 4"), "{rendered}");
        assert!(
            rendered.contains("2 plans: 1 passed, 1 failed"),
            "{rendered}"
        );
    }

    #[test]
    fn each_plan_gets_a_fresh_environment() {
        // The second plan must not see the first plan's dataset or fit.
        let report = run("marker $$one$$\n\
             generate blobs n=200 k=2 seed=3\n\
             fit adawave scale=32 as one\n\
             marker $$two$$\n\
             assert clusters == 2\n");
        let failure = report.plans[1].failure.as_ref().unwrap();
        assert!(failure.message.contains("no clustering yet"), "{failure:?}");
    }

    #[test]
    fn unknown_algorithm_surfaces_did_you_mean_with_the_line() {
        let report = run("marker $$typo$$\n\
             generate blobs n=100\n\
             fit adawav scale=32\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert_eq!(failure.line, 3);
        assert!(
            failure.message.contains("did you mean adawave?"),
            "{failure:?}"
        );
        // Unknown parameter keys go through the same suggestion path.
        let report = run("marker $$typo$$\n\
             generate blobs n=100\n\
             fit adawave scal=32\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(
            failure.message.contains("did you mean scale?"),
            "{failure:?}"
        );
    }

    #[test]
    fn unknown_shape_and_generate_params_suggest() {
        let report = run("marker $$t$$\ngenerate ringz n=100\nfit adawave\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(
            failure.message.contains("did you mean rings?"),
            "{failure:?}"
        );
        let report = run("marker $$t$$\ngenerate rings noize=10\nfit adawave\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(
            failure.message.contains("did you mean noise?"),
            "{failure:?}"
        );
    }

    #[test]
    fn steps_without_prerequisites_fail_with_guidance() {
        for (source, needle) in [
            ("marker $$t$$\nfit adawave\n", "no dataset"),
            ("marker $$t$$\nassert clusters == 1\n", "no clustering"),
            ("marker $$t$$\npredict\n", "no model"),
            ("marker $$t$$\nrefit\n", "no streaming session"),
            ("marker $$t$$\nsave \"x.awm\"\n", "no model"),
            (
                "marker $$t$$\ngenerate blobs n=50\nassert deterministic threads=1\n",
                "no fit",
            ),
            (
                "marker $$t$$\ngenerate blobs n=50 k=2\nfit adawave scale=16\nassert labels == labels_from nope\n",
                "no labels snapshot",
            ),
        ] {
            let report = run(source);
            let failure = report.plans[0].failure.as_ref().unwrap();
            assert!(failure.message.contains(needle), "{source:?}: {failure:?}");
        }
    }

    #[test]
    fn persistence_without_hooks_is_a_clear_error() {
        let report = run("marker $$t$$\n\
             generate blobs n=100 k=2\n\
             fit adawave scale=16\n\
             save \"m.awm\"\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(failure.message.contains("not wired"), "{failure:?}");
    }

    #[test]
    fn ingest_refit_matches_batch_fit_and_labels_snapshots_compare() {
        let report = run("marker $$stream equals batch$$\n\
             generate blobs n=900 k=2 noise=30 seed=5\n\
             fit adawave scale=32 as batch\n\
             ingest shards=3 batch-rows=200 scale=32\n\
             refit\n\
             assert labels == labels_from batch\n\
             assert clusters >= 2\n");
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn deterministic_assertion_passes_for_adawave() {
        let report = run("marker $$determinism$$\n\
             generate rings n=400 noise=20 seed=9\n\
             fit adawave scale=32\n\
             assert deterministic threads=1,2,4\n");
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn ingest_rejects_typoed_keys() {
        let report = run("marker $$t$$\n\
             generate blobs n=100\n\
             ingest batchrows=200 scale=16\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(
            failure.message.contains("did you mean batch-rows?"),
            "{failure:?}"
        );
    }

    #[test]
    fn ingest_rejects_malformed_shard_specs() {
        for spec in ["2", "0/3", "4/3", "a/b", "1/0"] {
            let report = run(&format!(
                "marker $$t$$\n\
                 generate blobs n=100\n\
                 ingest shard={spec} scale=16\n"
            ));
            let failure = report.plans[0].failure.as_ref().unwrap();
            assert!(
                failure.message.contains("bad shard spec") && failure.message.contains(spec),
                "{spec}: {failure:?}"
            );
        }
    }

    #[test]
    fn shard_accumulator_files_merge_to_match_the_direct_fit() {
        // Each shard ingests its row slice over the whole-dataset domain
        // and writes an accumulator file; loading and merging the files
        // must reproduce the one-shot fit's labels exactly.
        let report = run("marker $$two shards over files$$\n\
             generate blobs n=400 k=2 noise=20 seed=9\n\
             fit adawave scale=32 as direct\n\
             ingest shard=1/2 scale=32\n\
             save accumulator \"s1.awa\"\n\
             ingest shard=2/2 scale=32\n\
             save accumulator \"s2.awa\"\n\
             load accumulator \"s1.awa\"\n\
             merge \"s2.awa\"\n\
             refit\n\
             assert labels == labels_from direct\n");
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn merge_without_a_session_adopts_the_file() {
        // The second plan starts with a fresh environment (no streaming
        // session), so its first `merge` exercises the adopt path; the
        // shard files survive in the run's shared scratch directory.
        let report = run("marker $$produce shards$$\n\
             generate blobs n=300 k=2 seed=4\n\
             ingest shard=1/3 scale=32\n\
             save accumulator \"p1.awa\"\n\
             ingest shard=2/3 scale=32\n\
             save accumulator \"p2.awa\"\n\
             ingest shard=3/3 scale=32\n\
             save accumulator \"p3.awa\"\n\
             marker $$merge-only coordinator$$\n\
             generate blobs n=300 k=2 seed=4\n\
             fit adawave scale=32 as direct\n\
             merge \"p1.awa\"\n\
             merge \"p2.awa\"\n\
             merge \"p3.awa\"\n\
             refit\n\
             assert labels == labels_from direct\n");
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn accumulator_steps_report_their_prerequisites_and_paths() {
        let report = run("marker $$save first$$\n\
             generate blobs n=100\n\
             save accumulator \"x.awa\"\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(
            failure.message.contains("no streaming session to save"),
            "{failure:?}"
        );

        let report = run("marker $$missing file$$\n\
             generate blobs n=100\n\
             load accumulator \"missing.awa\"\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(
            failure.message.contains("loading") && failure.message.contains("missing.awa"),
            "{failure:?}"
        );

        // Merging a file written under a different configuration is
        // rejected and names the offending file.
        let report = run("marker $$mismatch$$\n\
             generate blobs n=200 k=2 seed=7\n\
             ingest shard=1/2 scale=32\n\
             save accumulator \"a.awa\"\n\
             ingest shard=2/2 scale=16\n\
             save accumulator \"b.awa\"\n\
             load accumulator \"a.awa\"\n\
             merge \"b.awa\"\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(
            failure.message.contains("merging") && failure.message.contains("b.awa"),
            "{failure:?}"
        );
    }

    #[test]
    fn metric_requires_matching_dataset_and_clustering_lengths() {
        let report = run("marker $$t$$\n\
             generate blobs n=100 k=2 seed=1\n\
             fit adawave scale=16\n\
             generate blobs n=50 k=2 seed=1\n\
             assert ari >= 0.5\n");
        let failure = report.plans[0].failure.as_ref().unwrap();
        assert!(
            failure.message.contains("did the dataset change"),
            "{failure:?}"
        );
    }
}
