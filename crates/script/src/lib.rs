//! # adawave-script
//!
//! A line-oriented scenario-script DSL — the repo's end-to-end regression
//! harness. A script is a sequence of `marker $$title$$` test plans whose
//! steps exercise the whole toolkit (generate or load a dataset, fit any
//! registry algorithm, stream-ingest and refit, save/load/predict with
//! trained models) and pin the outcome with assertions, in the spirit of
//! the soft65c02 tester:
//!
//! ```text
//! // Comments run to end of line; `;` works too.
//! marker $$adawave separates overlapping noisy rings$$
//! generate rings n=1200 noise=50 seed=11
//! fit adawave scale=48
//! assert clusters == 2
//! assert ari >= 0.9
//! assert deterministic threads=1,4   ; bit-identical at any thread count
//! ```
//!
//! [`parse()`] turns source text into a [`Script`] (every error carries its
//! 1-based line number; unknown verbs, metrics, shapes, algorithms and
//! parameters all get did-you-mean suggestions). An [`Engine`] — an
//! [`AlgorithmRegistry`](adawave_api::AlgorithmRegistry) plus optional
//! persistence hooks — runs each plan in a fresh session environment and
//! returns a per-plan pass/fail [`RunReport`]. A failing step aborts its
//! plan; the remaining plans still run.
//!
//! The umbrella `adawave` crate wires the standard registry and its model
//! persistence into a ready-made engine (`adawave::script_engine()`), and
//! the CLI exposes the whole thing as `adawave script <file.adw>` over
//! the `scenarios/` golden corpus.
//!
//! ```
//! use adawave_script::{parse, Engine};
//! use adawave_api::AlgorithmRegistry;
//!
//! let script = parse(
//!     "marker $$blobs$$\n\
//!      generate blobs n=400 k=2 seed=3\n\
//!      fit adawave scale=16\n\
//!      assert clusters == 2\n",
//! )
//! .unwrap();
//! let mut registry = AlgorithmRegistry::new();
//! adawave_core::register(&mut registry);
//! let report = Engine::new(registry).run(&script);
//! assert!(report.passed(), "{}", report.render());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod parse;

pub use engine::{Engine, Failure, LoadHook, PlanReport, RunReport, SaveHook};
pub use parse::{parse, Cmp, Command, Metric, ParseError, Plan, Script, Step};
