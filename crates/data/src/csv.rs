//! Minimal CSV reading/writing for labeled point sets.
//!
//! Format: one point per line, `d` comma-separated feature values followed
//! by an integer label in the last column. This is the layout the paper's
//! (never released) datasets would most plausibly use, and it lets users
//! run the examples on their own data.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use adawave_api::PointMatrix;

use crate::dataset::Dataset;

/// Errors produced by CSV I/O.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (wrong arity or unparsable number).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse a dataset from CSV text (features..., label). Empty lines and
/// lines starting with `#` are skipped.
pub fn parse_csv(name: &str, text: &str) -> Result<Dataset, CsvError> {
    let mut points: Option<PointMatrix> = None;
    let mut labels = Vec::new();
    let mut row = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(CsvError::Parse {
                line: line_no + 1,
                message: "need at least one feature and a label".to_string(),
            });
        }
        let d = fields.len() - 1;
        let matrix = points.get_or_insert_with(|| PointMatrix::new(d));
        if d != matrix.dims() {
            return Err(CsvError::Parse {
                line: line_no + 1,
                message: format!("expected {} features, found {d}", matrix.dims()),
            });
        }
        row.clear();
        for f in &fields[..d] {
            row.push(f.parse::<f64>().map_err(|e| CsvError::Parse {
                line: line_no + 1,
                message: format!("bad feature value '{f}': {e}"),
            })?);
        }
        let label = fields[d].parse::<usize>().map_err(|e| CsvError::Parse {
            line: line_no + 1,
            message: format!("bad label '{}': {e}", fields[d]),
        })?;
        matrix.push_row(&row);
        labels.push(label);
    }
    Ok(Dataset::new(name, points.unwrap_or_default(), labels, None))
}

/// Load a dataset from a CSV file.
pub fn load_csv(path: &Path) -> Result<Dataset, CsvError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut text = String::new();
    for line in reader.lines() {
        text.push_str(&line?);
        text.push('\n');
    }
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "csv".to_string());
    parse_csv(&name, &text)
}

/// Write a dataset to a CSV file (features..., label).
pub fn save_csv(dataset: &Dataset, path: &Path) -> Result<(), CsvError> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    for (point, label) in dataset.points.rows().zip(dataset.labels.iter()) {
        let mut line = String::new();
        for v in point {
            line.push_str(&format!("{v},"));
        }
        line.push_str(&label.to_string());
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_csv() {
        let text = "1.0,2.0,0\n3.0,4.0,1\n# comment\n\n5.5,-1.25,0\n";
        let ds = parse_csv("test", text).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.labels, vec![0, 1, 0]);
        assert_eq!(&ds.points[2], &[5.5, -1.25][..]);
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        let text = "1.0,2.0,0\n3.0,1\n";
        assert!(parse_csv("bad", text).is_err());
    }

    #[test]
    fn parse_rejects_bad_numbers() {
        assert!(parse_csv("bad", "1.0,x,0\n").is_err());
        assert!(parse_csv("bad", "1.0,2.0,notalabel\n").is_err());
        assert!(parse_csv("bad", "1.0\n").is_err());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let ds = Dataset::from_rows(
            "roundtrip",
            vec![vec![0.5, 1.5], vec![-2.0, 3.25]],
            vec![1, 0],
            None,
        );
        let dir = std::env::temp_dir();
        let path = dir.join("adawave_csv_roundtrip_test.csv");
        save_csv(&ds, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.points, ds.points);
        assert_eq!(loaded.labels, ds.labels);
    }

    #[test]
    fn empty_text_is_empty_dataset() {
        let ds = parse_csv("empty", "").unwrap();
        assert!(ds.is_empty());
    }
}
