//! Minimal CSV reading/writing for labeled point sets.
//!
//! Format: one point per line, `d` comma-separated feature values followed
//! by an integer label in the last column. This is the layout the paper's
//! (never released) datasets would most plausibly use, and it lets users
//! run the examples on their own data.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use adawave_api::PointMatrix;

use crate::dataset::Dataset;

/// Errors produced by CSV I/O.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (wrong arity or unparsable number).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse one data line (`features..., label`) into `row` (which is
/// cleared first) and return the label. `expected_dims` enforces arity
/// consistency across lines once the first row has fixed it.
fn parse_row(
    line_no: usize,
    line: &str,
    expected_dims: Option<usize>,
    row: &mut Vec<f64>,
) -> Result<usize, CsvError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() < 2 {
        return Err(CsvError::Parse {
            line: line_no,
            message: "need at least one feature and a label".to_string(),
        });
    }
    let d = fields.len() - 1;
    if let Some(expected) = expected_dims {
        if d != expected {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected {expected} features, found {d}"),
            });
        }
    }
    row.clear();
    for f in &fields[..d] {
        row.push(f.parse::<f64>().map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad feature value '{f}': {e}"),
        })?);
    }
    fields[d].parse::<usize>().map_err(|e| CsvError::Parse {
        line: line_no,
        message: format!("bad label '{}': {e}", fields[d]),
    })
}

/// Parse a dataset from CSV text (features..., label). Empty lines and
/// lines starting with `#` are skipped.
pub fn parse_csv(name: &str, text: &str) -> Result<Dataset, CsvError> {
    let mut points: Option<PointMatrix> = None;
    let mut labels = Vec::new();
    let mut row = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let label = parse_row(
            line_no + 1,
            line,
            points.as_ref().map(PointMatrix::dims),
            &mut row,
        )?;
        let matrix = points.get_or_insert_with(|| PointMatrix::new(row.len()));
        matrix.push_row(&row);
        labels.push(label);
    }
    Ok(Dataset::new(name, points.unwrap_or_default(), labels, None))
}

/// An iterator over a CSV file read in bounded batches of at most
/// `batch_rows` points — the constant-memory ingestion path of the
/// `adawave stream` subcommand. Each item is a [`Dataset`] holding one
/// batch; feature arity must stay consistent across the whole file, and
/// the first error (I/O or parse) ends the iteration.
#[derive(Debug)]
pub struct CsvBatches {
    lines: std::io::Lines<std::io::BufReader<std::fs::File>>,
    name: String,
    batch_rows: usize,
    line_no: usize,
    dims: Option<usize>,
    failed: bool,
}

impl CsvBatches {
    /// Open a CSV file for batched reading.
    ///
    /// # Panics
    /// Panics if `batch_rows` is zero.
    pub fn open(path: &Path, batch_rows: usize) -> Result<Self, CsvError> {
        assert!(batch_rows > 0, "CsvBatches: batch_rows must be positive");
        let file = std::fs::File::open(path)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_else(|| "csv".to_string());
        Ok(Self {
            lines: std::io::BufReader::new(file).lines(),
            name,
            batch_rows,
            line_no: 0,
            dims: None,
            failed: false,
        })
    }
}

impl Iterator for CsvBatches {
    type Item = Result<Dataset, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let mut points: Option<PointMatrix> = self.dims.map(PointMatrix::new);
        let mut labels = Vec::new();
        let mut row = Vec::new();
        while labels.len() < self.batch_rows {
            let Some(line) = self.lines.next() else { break };
            self.line_no += 1;
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            match parse_row(self.line_no, trimmed, self.dims, &mut row) {
                Ok(label) => {
                    let matrix = points.get_or_insert_with(|| PointMatrix::new(row.len()));
                    self.dims = Some(matrix.dims());
                    matrix.push_row(&row);
                    labels.push(label);
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        if labels.is_empty() {
            return None;
        }
        let points = points.expect("labels is non-empty, so points were pushed");
        Some(Ok(Dataset::new(self.name.clone(), points, labels, None)))
    }
}

/// Load a dataset from a CSV file.
pub fn load_csv(path: &Path) -> Result<Dataset, CsvError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut text = String::new();
    for line in reader.lines() {
        text.push_str(&line?);
        text.push('\n');
    }
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "csv".to_string());
    parse_csv(&name, &text)
}

/// Write a dataset to a CSV file (features..., label).
pub fn save_csv(dataset: &Dataset, path: &Path) -> Result<(), CsvError> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    for (point, label) in dataset.points.rows().zip(dataset.labels.iter()) {
        let mut line = String::new();
        for v in point {
            line.push_str(&format!("{v},"));
        }
        line.push_str(&label.to_string());
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_csv() {
        let text = "1.0,2.0,0\n3.0,4.0,1\n# comment\n\n5.5,-1.25,0\n";
        let ds = parse_csv("test", text).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.labels, vec![0, 1, 0]);
        assert_eq!(&ds.points[2], &[5.5, -1.25][..]);
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        let text = "1.0,2.0,0\n3.0,1\n";
        assert!(parse_csv("bad", text).is_err());
    }

    #[test]
    fn parse_rejects_bad_numbers() {
        assert!(parse_csv("bad", "1.0,x,0\n").is_err());
        assert!(parse_csv("bad", "1.0,2.0,notalabel\n").is_err());
        assert!(parse_csv("bad", "1.0\n").is_err());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let ds = Dataset::from_rows(
            "roundtrip",
            vec![vec![0.5, 1.5], vec![-2.0, 3.25]],
            vec![1, 0],
            None,
        );
        let dir = std::env::temp_dir();
        let path = dir.join("adawave_csv_roundtrip_test.csv");
        save_csv(&ds, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.points, ds.points);
        assert_eq!(loaded.labels, ds.labels);
    }

    #[test]
    fn empty_text_is_empty_dataset() {
        let ds = parse_csv("empty", "").unwrap();
        assert!(ds.is_empty());
    }

    fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn batches_cover_the_file_in_order_and_match_the_one_shot_parse() {
        let mut text = String::from("# header comment\n");
        for i in 0..25 {
            text.push_str(&format!("{}.5,{},{}\n", i, i * 2, i % 3));
        }
        text.push('\n');
        let path = write_temp("adawave_csv_batches_test.csv", &text);
        let whole = load_csv(&path).unwrap();

        let mut rebuilt: Option<Dataset> = None;
        let mut batch_sizes = Vec::new();
        for batch in CsvBatches::open(&path, 7).unwrap() {
            let batch = batch.unwrap();
            batch_sizes.push(batch.len());
            match &mut rebuilt {
                None => rebuilt = Some(batch),
                Some(ds) => {
                    ds.points.append(&batch.points);
                    ds.labels.extend_from_slice(&batch.labels);
                }
            }
        }
        std::fs::remove_file(&path).ok();
        assert_eq!(batch_sizes, vec![7, 7, 7, 4]);
        let rebuilt = rebuilt.unwrap();
        assert_eq!(rebuilt.points, whole.points);
        assert_eq!(rebuilt.labels, whole.labels);
    }

    #[test]
    fn batches_surface_parse_errors_and_stop() {
        let path = write_temp(
            "adawave_csv_batches_error_test.csv",
            "1.0,2.0,0\n1.0,1\nnever,reached,0\n",
        );
        let mut batches = CsvBatches::open(&path, 10).unwrap();
        // The arity error on line 2 surfaces on the first (partial) pull...
        let err = batches.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        // ...and iteration ends instead of resynchronizing mid-file.
        assert!(batches.next().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batches_enforce_arity_across_batch_boundaries() {
        // 2 features in the first batch, 3 in the second: rejected even
        // though each batch alone would be self-consistent.
        let path = write_temp(
            "adawave_csv_batches_arity_test.csv",
            "1.0,2.0,0\n3.0,4.0,1\n5.0,6.0,7.0,1\n",
        );
        let mut batches = CsvBatches::open(&path, 2).unwrap();
        assert!(batches.next().unwrap().is_ok());
        assert!(batches.next().unwrap().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batches_of_an_empty_file_yield_nothing() {
        let path = write_temp("adawave_csv_batches_empty_test.csv", "# only a comment\n");
        assert!(CsvBatches::open(&path, 4).unwrap().next().is_none());
        std::fs::remove_file(&path).ok();
    }
}
