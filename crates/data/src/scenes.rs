//! Named benchmark scenes for the scenario-script DSL.
//!
//! Each scene is a labelled [`Dataset`] in the unit square composed from
//! the primitive [`shapes`] generators plus a configurable
//! percentage of uniform background noise — the construction of the
//! paper's synthetic experiments, packaged behind a name so a scenario
//! script can say `generate rings n=1200 noise=50 seed=11` instead of
//! hand-assembling a scene. Everything is deterministic given the seed.

use adawave_api::PointMatrix;

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::shapes;
use crate::synthetic::{noise_count_for_percentage, synthetic_benchmark};

/// The scene names accepted by [`generate`], sorted.
pub const SHAPES: &[&str] = &[
    "blobs",
    "concentric",
    "lines",
    "moons",
    "rings",
    "spiral",
    "synthetic",
];

/// Finish a scene: overlay `noise_percent`% uniform noise over the unit
/// square (labelled `clusters`, the dataset's noise label) and package
/// the dataset.
fn finish(
    name: &str,
    mut points: PointMatrix,
    mut labels: Vec<usize>,
    clusters: usize,
    rng: &mut Rng,
    noise_percent: f64,
) -> Dataset {
    let noise = noise_count_for_percentage(points.len(), noise_percent);
    shapes::uniform_box(&mut points, rng, &[0.0, 0.0], &[1.0, 1.0], noise);
    labels.extend(std::iter::repeat_n(clusters, noise));
    Dataset::new(name.to_string(), points, labels, Some(clusters))
}

/// Generate the named scene with `n` cluster points (noise comes on top,
/// as `noise_percent`% of the final dataset), deterministically from
/// `seed`. `k` is the cluster count for `blobs` and is ignored by the
/// fixed-shape scenes. Returns `None` for an unknown name — see
/// [`SHAPES`].
pub fn generate(shape: &str, n: usize, k: usize, noise_percent: f64, seed: u64) -> Option<Dataset> {
    let n = n.max(1);
    let mut rng = Rng::new(seed);
    let ds = match shape {
        "blobs" => {
            // `k` Gaussian blobs spread on a circle around the center.
            let k = k.max(1);
            let mut points = PointMatrix::with_capacity(2, n);
            let mut labels = Vec::with_capacity(n);
            for c in 0..k {
                let count = n / k + usize::from(c < n % k);
                let angle = c as f64 / k as f64 * std::f64::consts::TAU;
                let center = [0.5 + 0.30 * angle.cos(), 0.5 + 0.30 * angle.sin()];
                shapes::gaussian_blob(&mut points, &mut rng, &center, &[0.03, 0.03], count);
                labels.extend(std::iter::repeat_n(c, count));
            }
            finish("blobs", points, labels, k, &mut rng, noise_percent)
        }
        "rings" => {
            // Two noisy circular distributions side by side — the shape
            // family of the paper's ring clusters, kept disjoint so the
            // scene stays separable at corpus-sized point counts (the
            // genuinely overlapping pair lives in the `synthetic` scene).
            let mut points = PointMatrix::with_capacity(2, n);
            let mut labels = Vec::with_capacity(n);
            let half = n / 2;
            shapes::ring(&mut points, &mut rng, (0.28, 0.50), 0.14, 0.008, half);
            labels.extend(std::iter::repeat_n(0, half));
            shapes::ring(&mut points, &mut rng, (0.72, 0.50), 0.14, 0.008, n - half);
            labels.extend(std::iter::repeat_n(1, n - half));
            finish("rings", points, labels, 2, &mut rng, noise_percent)
        }
        "concentric" => {
            // Two concentric rings: the classic non-convex case a
            // centroid method cannot separate.
            let mut points = PointMatrix::with_capacity(2, n);
            let mut labels = Vec::with_capacity(n);
            let half = n / 2;
            shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.10, 0.008, half);
            labels.extend(std::iter::repeat_n(0, half));
            shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.34, 0.008, n - half);
            labels.extend(std::iter::repeat_n(1, n - half));
            finish("concentric", points, labels, 2, &mut rng, noise_percent)
        }
        "moons" => {
            let mut points = PointMatrix::with_capacity(2, n);
            let split = shapes::two_moons(&mut points, &mut rng, 0.01, n);
            let mut labels = vec![0; split];
            labels.extend(std::iter::repeat_n(1, n - split));
            finish("moons", points, labels, 2, &mut rng, noise_percent)
        }
        "lines" => {
            // The two parallel sloping segments of the synthetic scene.
            let mut points = PointMatrix::with_capacity(2, n);
            let mut labels = Vec::with_capacity(n);
            let half = n / 2;
            shapes::line_segment(
                &mut points,
                &mut rng,
                (0.08, 0.16),
                (0.44, 0.42),
                0.004,
                half,
            );
            labels.extend(std::iter::repeat_n(0, half));
            shapes::line_segment(
                &mut points,
                &mut rng,
                (0.12, 0.05),
                (0.48, 0.31),
                0.004,
                n - half,
            );
            labels.extend(std::iter::repeat_n(1, n - half));
            finish("lines", points, labels, 2, &mut rng, noise_percent)
        }
        "spiral" => {
            // An Archimedean spiral plus a distant blob.
            let mut points = PointMatrix::with_capacity(2, n);
            let mut labels = Vec::with_capacity(n);
            let spiral_n = n * 2 / 3;
            shapes::spiral(
                &mut points,
                &mut rng,
                (0.35, 0.35),
                1.5,
                0.28,
                0.004,
                spiral_n,
            );
            labels.extend(std::iter::repeat_n(0, spiral_n));
            shapes::gaussian_blob(
                &mut points,
                &mut rng,
                &[0.82, 0.82],
                &[0.03, 0.03],
                n - spiral_n,
            );
            labels.extend(std::iter::repeat_n(1, n - spiral_n));
            finish("spiral", points, labels, 2, &mut rng, noise_percent)
        }
        "synthetic" => {
            // The full five-cluster scene of Fig. 7, sized so that the
            // cluster points total roughly `n`.
            let per_cluster = (n / 5).max(1);
            synthetic_benchmark(noise_percent, per_cluster, seed)
        }
        _ => return None,
    };
    Some(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shape_generates_and_is_deterministic() {
        for &shape in SHAPES {
            let ds = generate(shape, 300, 3, 30.0, 7).unwrap_or_else(|| panic!("{shape}"));
            assert_eq!(ds.dims(), 2, "{shape}");
            assert!(ds.len() >= 300, "{shape}: {}", ds.len());
            assert!(ds.cluster_count() >= 1, "{shape}");
            assert!(
                (ds.noise_fraction() - 0.3).abs() < 0.02,
                "{shape}: {}",
                ds.noise_fraction()
            );
            assert_eq!(generate(shape, 300, 3, 30.0, 7).unwrap(), ds, "{shape}");
        }
    }

    #[test]
    fn blobs_honor_k_and_points_stay_in_unit_square() {
        let ds = generate("blobs", 500, 5, 0.0, 1).unwrap();
        assert_eq!(ds.cluster_count(), 5);
        assert_eq!(ds.len(), 500);
        for p in ds.points.rows() {
            assert!(p[0] > -0.2 && p[0] < 1.2);
            assert!(p[1] > -0.2 && p[1] < 1.2);
        }
    }

    #[test]
    fn unknown_shape_is_none_and_shapes_list_is_sorted() {
        assert!(generate("donut", 100, 2, 0.0, 1).is_none());
        let mut sorted = SHAPES.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, SHAPES);
    }

    #[test]
    fn zero_noise_means_no_noise_points() {
        let ds = generate("moons", 200, 2, 0.0, 3).unwrap();
        assert_eq!(ds.noise_fraction(), 0.0);
        assert_eq!(ds.len(), 200);
    }
}
