//! Surrogates for the UCI datasets of Table I and the Roadmap case study.
//!
//! The UCI repository is not reachable from this offline environment, so
//! each dataset is replaced by a seeded synthetic surrogate with the same
//! number of points, dimensionality and class structure (class counts,
//! imbalance, separability character). See DESIGN.md §2 for the
//! substitution rationale; EXPERIMENTS.md compares the resulting numbers
//! with the paper's Table I.
//!
//! | name        | n       | d  | classes | character                              |
//! |-------------|---------|----|---------|-----------------------------------------|
//! | Seeds       | 210     | 7  | 3       | moderately overlapping Gaussians        |
//! | Roadmap     | 434,874 | 2  | 7       | dense city blobs + arterial "noise"     |
//! | Iris        | 150     | 4  | 3       | one separable class + two overlapping   |
//! | Glass       | 214     | 9  | 6       | weak per-attribute class correlation    |
//! | DUMDH       | 869     | 13 | 4       | high-d, moderate overlap                |
//! | HTRU2       | 17,898  | 9  | 2       | heavily imbalanced (≈9% positives)      |
//! | Dermatology | 366     | 33 | 6       | very high-d, blocky attribute structure |
//! | Motor       | 94      | 3  | 3       | tiny, well separated                    |
//! | Wholesale   | 440     | 8  | 2       | skewed spending-like features           |

use adawave_api::PointMatrix;

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::shapes;

/// Generate a generic Gaussian-mixture surrogate.
///
/// `class_sizes[k]` points are drawn for class `k` around a random centre
/// in `[0, 1]^dims`; `spread` controls the per-class standard deviation and
/// `separation` scales how far class centres are pushed apart.
fn gaussian_mixture(
    name: &str,
    rng: &mut Rng,
    dims: usize,
    class_sizes: &[usize],
    spread: f64,
    separation: f64,
) -> Dataset {
    let mut points = PointMatrix::new(dims);
    let mut labels = Vec::new();
    for (class, &size) in class_sizes.iter().enumerate() {
        // Deterministic, well-spread class centres.
        let center: Vec<f64> = (0..dims)
            .map(|_| 0.5 + separation * (rng.uniform() - 0.5))
            .collect();
        let std_dev: Vec<f64> = (0..dims)
            .map(|_| spread * rng.uniform_range(0.6, 1.4))
            .collect();
        shapes::gaussian_blob(&mut points, rng, &center, &std_dev, size);
        labels.extend(std::iter::repeat_n(class, size));
    }
    Dataset::new(name, points, labels, None)
}

/// Seeds surrogate: 210 points, 7 attributes, 3 balanced wheat varieties
/// with moderate overlap.
pub fn seeds(seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    gaussian_mixture("Seeds", &mut rng, 7, &[70, 70, 70], 0.09, 0.55)
}

/// Iris surrogate: 150 points, 4 attributes, 3 classes of 50. One class is
/// linearly separable from the other two, which overlap — the structure the
/// real Iris data is famous for.
pub fn iris(seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut points = PointMatrix::new(4);
    let mut labels = Vec::new();
    // "setosa": clearly separated.
    shapes::gaussian_blob(
        &mut points,
        &mut rng,
        &[0.2, 0.7, 0.15, 0.1],
        &[0.035, 0.04, 0.02, 0.015],
        50,
    );
    labels.extend(std::iter::repeat_n(0, 50));
    // "versicolor" and "virginica": adjacent and partially overlapping.
    shapes::gaussian_blob(
        &mut points,
        &mut rng,
        &[0.6, 0.35, 0.55, 0.45],
        &[0.05, 0.04, 0.05, 0.05],
        50,
    );
    labels.extend(std::iter::repeat_n(1, 50));
    shapes::gaussian_blob(
        &mut points,
        &mut rng,
        &[0.72, 0.38, 0.70, 0.65],
        &[0.06, 0.04, 0.06, 0.07],
        50,
    );
    labels.extend(std::iter::repeat_n(2, 50));
    Dataset::new("Iris", points, labels, None)
}

/// Glass surrogate: 214 points, 9 attributes (RI, Na, Mg, Al, Si, K, Ca,
/// Ba, Fe), 6 imbalanced classes. Attributes are generated so that their
/// Pearson correlation with the class index approximates Table II of the
/// paper: Mg strongly negative, Na/Al/Ba positive, K/Ca ≈ 0, …
pub fn glass(seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    // Class sizes of the real Glass data: 70, 76, 17, 13, 9, 29.
    let class_sizes = [70usize, 76, 17, 13, 9, 29];
    // Target correlation of each attribute with the class label (Table II).
    let target_corr = [-0.16, 0.50, -0.74, 0.60, 0.15, -0.01, 0.001, 0.58, -0.19];
    let n: usize = class_sizes.iter().sum();
    let mut points = PointMatrix::with_capacity(target_corr.len(), n);
    let mut labels = Vec::with_capacity(n);
    // Class index scaled to [0, 1] drives the correlated component.
    let max_class = (class_sizes.len() - 1) as f64;
    let mut row = [0.0; 9];
    for (class, &size) in class_sizes.iter().enumerate() {
        let z = class as f64 / max_class;
        for _ in 0..size {
            for (v, &rho) in row.iter_mut().zip(target_corr.iter()) {
                // attribute = rho * class-signal + sqrt(1 - rho^2) * noise
                let noise = rng.normal() * 0.28;
                *v = rho * (z - 0.5) + (1.0 - rho * rho).sqrt() * noise + 0.5;
            }
            points.push_row(&row);
            labels.push(class);
        }
    }
    Dataset::new("Glass", points, labels, None)
}

/// DUMDH surrogate: 869 points, 13 attributes, 4 moderately overlapping
/// classes.
pub fn dumdh(seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    gaussian_mixture("DUMDH", &mut rng, 13, &[260, 230, 210, 169], 0.10, 0.6)
}

/// HTRU2 surrogate: 17,898 points, 9 attributes, 2 classes with the real
/// data's ≈9% positive-class imbalance; the positive class is shifted but
/// overlaps the bulk.
pub fn htru2(seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut points = PointMatrix::new(9);
    let mut labels = Vec::new();
    let negatives = 16_259usize;
    let positives = 1_639usize;
    let neg_center = vec![0.45; 9];
    let neg_std = vec![0.07; 9];
    shapes::gaussian_blob(&mut points, &mut rng, &neg_center, &neg_std, negatives);
    labels.extend(std::iter::repeat_n(0, negatives));
    let pos_center: Vec<f64> = (0..9).map(|j| if j < 4 { 0.72 } else { 0.5 }).collect();
    let pos_std = vec![0.09; 9];
    shapes::gaussian_blob(&mut points, &mut rng, &pos_center, &pos_std, positives);
    labels.extend(std::iter::repeat_n(1, positives));
    Dataset::new("HTRU2", points, labels, None)
}

/// Dermatology surrogate: 366 points, 33 attributes, 6 classes with blocky
/// per-class attribute activations (clinical/histopathological feature
/// groups), which keeps classes separable despite the high dimension.
pub fn dermatology(seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let class_sizes = [112usize, 61, 72, 49, 52, 20];
    let dims = 33usize;
    let mut points = PointMatrix::new(dims);
    let mut labels = Vec::new();
    let mut row = vec![0.0; dims];
    for (class, &size) in class_sizes.iter().enumerate() {
        // Each class activates a distinct block of ~6 attributes.
        let block_start = class * 5;
        for _ in 0..size {
            for (j, v) in row.iter_mut().enumerate() {
                let base = if j >= block_start && j < block_start + 6 {
                    0.75
                } else {
                    0.25
                };
                *v = (base + rng.normal() * 0.08).clamp(0.0, 1.0);
            }
            points.push_row(&row);
            labels.push(class);
        }
    }
    Dataset::new("Dermatology", points, labels, None)
}

/// Motor surrogate: 94 points, 3 attributes, 3 well-separated classes (most
/// algorithms in the paper reach AMI 1.0 on the real data).
pub fn motor(seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut points = PointMatrix::new(3);
    let mut labels = Vec::new();
    let centers = [[0.15, 0.2, 0.2], [0.5, 0.75, 0.5], [0.85, 0.25, 0.8]];
    let sizes = [32usize, 31, 31];
    for (class, (&size, center)) in sizes.iter().zip(centers.iter()).enumerate() {
        shapes::gaussian_blob(&mut points, &mut rng, center, &[0.03, 0.03, 0.03], size);
        labels.extend(std::iter::repeat_n(class, size));
    }
    Dataset::new("Motor", points, labels, None)
}

/// Wholesale-customers surrogate: 440 points, 8 attributes, 2 channels with
/// skewed (log-normal-like) spending features.
pub fn wholesale(seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let sizes = [298usize, 142];
    let mut points = PointMatrix::new(8);
    let mut labels = Vec::new();
    let mut row = [0.0; 8];
    for (class, &size) in sizes.iter().enumerate() {
        for _ in 0..size {
            for (j, v) in row.iter_mut().enumerate() {
                // Channel shifts a subset of spending categories.
                let shift = if (j < 3) == (class == 0) { 0.35 } else { 0.0 };
                let log_normal = (rng.normal() * 0.4).exp() * 0.15;
                *v = (0.2 + shift + log_normal).min(1.5);
            }
            points.push_row(&row);
            labels.push(class);
        }
    }
    Dataset::new("Wholesale", points, labels, None)
}

/// Roadmap-like surrogate (Fig. 9 and the Table I "Roadmap" row): a 2-D
/// road network where a handful of dense city areas sit in a sea of
/// arterial roads and sparse countryside segments.
///
/// `n` is the total number of points (the real dataset has 434,874). Points
/// in cities are labeled by city id; arterials and countryside get the
/// noise label (the paper: "the majority of road segments can be termed as
/// noise").
pub fn roadmap_like(n: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    // City centres roughly mimicking population centres in a 185 x 135 box
    // (normalized to [0,1] x [0,0.73]).
    let cities: [(f64, f64, f64); 7] = [
        (0.55, 0.42, 0.030), // large city ("Aalborg")
        (0.48, 0.62, 0.022), // "Hjørring"
        (0.72, 0.60, 0.020), // "Frederikshavn"
        (0.30, 0.30, 0.018),
        (0.68, 0.22, 0.016),
        (0.22, 0.55, 0.015),
        (0.82, 0.40, 0.014),
    ];
    let city_fraction = 0.45;
    let city_points_total = (n as f64 * city_fraction) as usize;
    let weights: Vec<f64> = cities.iter().map(|c| c.2).collect();
    let weight_sum: f64 = weights.iter().sum();

    let mut points = PointMatrix::with_capacity(2, n);
    let mut labels = Vec::with_capacity(n);
    for (id, &(cx, cy, w)) in cities.iter().enumerate() {
        let count = (city_points_total as f64 * w / weight_sum) as usize;
        shapes::gaussian_blob(&mut points, &mut rng, &[cx, cy], &[w, w * 0.8], count);
        labels.extend(std::iter::repeat_n(id, count));
    }
    let noise_label = cities.len();

    // Arterial roads connecting the three largest cities and the box corners.
    let arterials = [
        ((0.55, 0.42), (0.48, 0.62)),
        ((0.55, 0.42), (0.72, 0.60)),
        ((0.55, 0.42), (0.30, 0.30)),
        ((0.30, 0.30), (0.05, 0.05)),
        ((0.72, 0.60), (0.95, 0.70)),
        ((0.68, 0.22), (0.95, 0.05)),
        ((0.22, 0.55), (0.05, 0.70)),
        ((0.55, 0.42), (0.68, 0.22)),
    ];
    let remaining = n.saturating_sub(points.len());
    let arterial_points = remaining / 2;
    let per_road = arterial_points / arterials.len();
    for &(start, end) in &arterials {
        shapes::line_segment(&mut points, &mut rng, start, end, 0.006, per_road);
        labels.extend(std::iter::repeat_n(noise_label, per_road));
    }
    // Countryside: sparse uniform road segments over the whole region.
    let countryside = n.saturating_sub(points.len());
    shapes::uniform_box(
        &mut points,
        &mut rng,
        &[0.0, 0.0],
        &[1.0, 0.73],
        countryside,
    );
    labels.extend(std::iter::repeat_n(noise_label, countryside));

    Dataset::new("Roadmap", points, labels, Some(noise_label))
}

/// The nine Table-I datasets in the paper's column order, using the real
/// datasets' sizes. `roadmap_n` lets callers shrink the Roadmap surrogate
/// (the full 434,874 points are only needed for the headline experiment).
pub fn table1_datasets(seed: u64, roadmap_n: usize) -> Vec<Dataset> {
    vec![
        seeds(seed),
        roadmap_like(roadmap_n, seed ^ 0x1),
        iris(seed ^ 0x2),
        glass(seed ^ 0x3),
        dumdh(seed ^ 0x4),
        htru2(seed ^ 0x5),
        dermatology(seed ^ 0x6),
        motor(seed ^ 0x7),
        wholesale(seed ^ 0x8),
    ]
}

/// The real Roadmap dataset size, for the full-scale experiment.
pub const ROADMAP_FULL_SIZE: usize = 434_874;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_dimensions_match_table1() {
        let expectations: [(&str, usize, usize, usize); 8] = [
            ("Seeds", 210, 7, 3),
            ("Iris", 150, 4, 3),
            ("Glass", 214, 9, 6),
            ("DUMDH", 869, 13, 4),
            ("HTRU2", 17_898, 9, 2),
            ("Dermatology", 366, 33, 6),
            ("Motor", 94, 3, 3),
            ("Wholesale", 440, 8, 2),
        ];
        let datasets = [
            seeds(1),
            iris(1),
            glass(1),
            dumdh(1),
            htru2(1),
            dermatology(1),
            motor(1),
            wholesale(1),
        ];
        for (ds, (name, n, d, k)) in datasets.iter().zip(expectations.iter()) {
            assert_eq!(&ds.name, name);
            assert_eq!(ds.len(), *n, "{name}: wrong n");
            assert_eq!(ds.dims(), *d, "{name}: wrong d");
            assert_eq!(ds.class_count(), *k, "{name}: wrong class count");
        }
    }

    #[test]
    fn htru2_is_imbalanced_like_the_real_data() {
        let ds = htru2(3);
        let positives = ds.labels.iter().filter(|&&l| l == 1).count();
        let rate = positives as f64 / ds.len() as f64;
        assert!((rate - 0.0916).abs() < 0.01, "positive rate {rate}");
    }

    #[test]
    fn glass_correlations_approximate_table2() {
        let ds = glass(5);
        let class: Vec<f64> = ds.labels.iter().map(|&l| l as f64).collect();
        // Compute Pearson correlation of attribute 2 (Mg) and attribute 3 (Al).
        let corr = |attr: usize| -> f64 {
            let x: Vec<f64> = ds.points.rows().map(|p| p[attr]).collect();
            let n = x.len() as f64;
            let mx = x.iter().sum::<f64>() / n;
            let my = class.iter().sum::<f64>() / n;
            let mut sxy = 0.0;
            let mut sxx = 0.0;
            let mut syy = 0.0;
            for i in 0..x.len() {
                let dx = x[i] - mx;
                let dy = class[i] - my;
                sxy += dx * dy;
                sxx += dx * dx;
                syy += dy * dy;
            }
            sxy / (sxx.sqrt() * syy.sqrt())
        };
        assert!(
            corr(2) < -0.5,
            "Mg should be strongly negative: {}",
            corr(2)
        );
        assert!(corr(3) > 0.35, "Al should be positive: {}", corr(3));
        assert!(corr(5).abs() < 0.25, "K should be near zero: {}", corr(5));
    }

    #[test]
    fn iris_setosa_is_separable() {
        let ds = iris(7);
        // Minimum distance between class 0 and the others is larger than the
        // typical within-class spread of classes 1/2.
        let class0: Vec<&[f64]> = ds
            .points
            .rows()
            .zip(ds.labels.iter())
            .filter(|(_, &l)| l == 0)
            .map(|(p, _)| p)
            .collect();
        let others: Vec<&[f64]> = ds
            .points
            .rows()
            .zip(ds.labels.iter())
            .filter(|(_, &l)| l != 0)
            .map(|(p, _)| p)
            .collect();
        let min_cross = class0
            .iter()
            .flat_map(|a| {
                others.iter().map(move |b| {
                    a.iter()
                        .zip(b.iter())
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt()
                })
            })
            .fold(f64::MAX, f64::min);
        assert!(
            min_cross > 0.1,
            "setosa should be separated, min dist {min_cross}"
        );
    }

    #[test]
    fn roadmap_has_dense_cities_and_majority_noise() {
        let ds = roadmap_like(20_000, 11);
        assert_eq!(ds.dims(), 2);
        assert!(ds.len() >= 19_900 && ds.len() <= 20_000);
        assert!(ds.noise_fraction() > 0.5, "noise {}", ds.noise_fraction());
        assert_eq!(ds.cluster_count(), 7);
    }

    #[test]
    fn roadmap_full_size_constant() {
        assert_eq!(ROADMAP_FULL_SIZE, 434_874);
    }

    #[test]
    fn table1_bundle_has_nine_datasets() {
        let all = table1_datasets(2, 5_000);
        assert_eq!(all.len(), 9);
        assert_eq!(all[1].name, "Roadmap");
        assert!(all[1].len() <= 5_000);
    }

    #[test]
    fn surrogates_are_deterministic() {
        assert_eq!(seeds(9), seeds(9));
        assert_eq!(glass(9), glass(9));
        assert_ne!(seeds(9), seeds(10));
    }

    #[test]
    fn dermatology_classes_have_distinct_blocks() {
        let ds = dermatology(13);
        // Mean of attribute 2 should be high for class 0, low for class 5.
        let mean_attr = |class: usize, attr: usize| -> f64 {
            let vals: Vec<f64> = ds
                .points
                .rows()
                .zip(ds.labels.iter())
                .filter(|(_, &l)| l == class)
                .map(|(p, _)| p[attr])
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(mean_attr(0, 2) > 0.6);
        assert!(mean_attr(5, 2) < 0.4);
        assert!(mean_attr(5, 27) > 0.6);
    }
}
