//! The paper's synthetic benchmarks.
//!
//! * [`synthetic_benchmark`] — Fig. 7: five clusters of `points_per_cluster`
//!   objects each in two dimensions (a Gaussian ellipse, two overlapping
//!   circular distributions, two parallel sloping lines) plus a configurable
//!   percentage of uniform background noise.
//! * [`running_example`] — Fig. 1/2: the same scene at 50% noise with the
//!   paper's default cluster size.
//! * [`runtime_scaling_dataset`] — Fig. 10: the same scene with a scalable
//!   number of objects per cluster at a fixed 75% noise.

use adawave_api::PointMatrix;

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::shapes;

/// Ground-truth label used for noise points in the synthetic datasets.
pub const SYNTHETIC_NOISE_LABEL: usize = 5;

/// Number of clusters in the synthetic scene.
pub const SYNTHETIC_CLUSTERS: usize = 5;

/// The paper's default cluster size for the synthetic benchmark
/// ("five clusters of 5600 objects each").
pub const DEFAULT_POINTS_PER_CLUSTER: usize = 5600;

fn scene(rng: &mut Rng, points_per_cluster: usize) -> (PointMatrix, Vec<usize>) {
    let mut points = PointMatrix::with_capacity(2, points_per_cluster * SYNTHETIC_CLUSTERS);
    let mut labels = Vec::with_capacity(points_per_cluster * SYNTHETIC_CLUSTERS);

    // Cluster 0: a Gaussian ellipse ("a typical cluster roughly within an
    // ellipse ... Gaussian distribution with a small standard deviation").
    shapes::gaussian_ellipse(
        &mut points,
        rng,
        (0.20, 0.80),
        (0.060, 0.022),
        0.55,
        points_per_cluster,
    );
    labels.extend(std::iter::repeat_n(0, points_per_cluster));

    // Clusters 1 & 2: two circular (ring) distributions overlapping in the
    // x and y directions.
    shapes::ring(
        &mut points,
        rng,
        (0.64, 0.68),
        0.11,
        0.008,
        points_per_cluster,
    );
    labels.extend(std::iter::repeat_n(1, points_per_cluster));
    shapes::ring(
        &mut points,
        rng,
        (0.78, 0.58),
        0.11,
        0.008,
        points_per_cluster,
    );
    labels.extend(std::iter::repeat_n(2, points_per_cluster));

    // Clusters 3 & 4: two parallel sloping line segments.
    shapes::line_segment(
        &mut points,
        rng,
        (0.08, 0.16),
        (0.44, 0.42),
        0.004,
        points_per_cluster,
    );
    labels.extend(std::iter::repeat_n(3, points_per_cluster));
    shapes::line_segment(
        &mut points,
        rng,
        (0.12, 0.05),
        (0.48, 0.31),
        0.004,
        points_per_cluster,
    );
    labels.extend(std::iter::repeat_n(4, points_per_cluster));

    (points, labels)
}

/// Number of uniform noise points needed so that they make up
/// `noise_percent`% of the final dataset containing `cluster_points`
/// cluster members.
pub fn noise_count_for_percentage(cluster_points: usize, noise_percent: f64) -> usize {
    assert!(
        (0.0..100.0).contains(&noise_percent),
        "noise percentage must be in [0, 100)"
    );
    if noise_percent <= 0.0 {
        return 0;
    }
    let frac = noise_percent / 100.0;
    ((cluster_points as f64) * frac / (1.0 - frac)).round() as usize
}

/// Fig. 7 generator: the five-cluster scene plus `noise_percent`% uniform
/// noise over the enclosing unit square.
pub fn synthetic_benchmark(noise_percent: f64, points_per_cluster: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let (mut points, mut labels) = scene(&mut rng, points_per_cluster);
    let cluster_points = points.len();
    let noise = noise_count_for_percentage(cluster_points, noise_percent);
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], noise);
    labels.extend(std::iter::repeat_n(SYNTHETIC_NOISE_LABEL, noise));
    Dataset::new(
        format!("synthetic-noise{noise_percent:.0}"),
        points,
        labels,
        Some(SYNTHETIC_NOISE_LABEL),
    )
}

/// The running example of Fig. 1/2 (≈50% noise, default cluster size).
pub fn running_example(seed: u64) -> Dataset {
    let mut ds = synthetic_benchmark(50.0, DEFAULT_POINTS_PER_CLUSTER, seed);
    ds.name = "running-example".to_string();
    ds
}

/// Fig. 10 generator: the same scene with `points_per_cluster` objects per
/// cluster at a fixed 75% noise, used to scale the total number of objects.
pub fn runtime_scaling_dataset(points_per_cluster: usize, seed: u64) -> Dataset {
    let mut ds = synthetic_benchmark(75.0, points_per_cluster, seed);
    ds.name = format!("runtime-n{}", ds.len());
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_count_math() {
        assert_eq!(noise_count_for_percentage(1000, 0.0), 0);
        assert_eq!(noise_count_for_percentage(1000, 50.0), 1000);
        assert_eq!(noise_count_for_percentage(1000, 75.0), 3000);
        assert_eq!(noise_count_for_percentage(1000, 80.0), 4000);
        assert_eq!(noise_count_for_percentage(2800, 90.0), 25200);
    }

    #[test]
    #[should_panic(expected = "noise percentage")]
    fn full_noise_rejected() {
        noise_count_for_percentage(100, 100.0);
    }

    #[test]
    fn benchmark_noise_fraction_matches_request() {
        for pct in [20.0, 50.0, 80.0] {
            let ds = synthetic_benchmark(pct, 500, 7);
            assert!((ds.noise_fraction() * 100.0 - pct).abs() < 1.0, "{pct}%");
        }
    }

    #[test]
    fn benchmark_structure() {
        let ds = synthetic_benchmark(50.0, 200, 3);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.cluster_count(), SYNTHETIC_CLUSTERS);
        assert_eq!(ds.noise_label, Some(SYNTHETIC_NOISE_LABEL));
        assert_eq!(ds.len(), 200 * 5 * 2); // 50% noise doubles the size
                                           // All points are inside (or very near) the unit square.
        for p in ds.points.rows() {
            assert!(p[0] > -0.2 && p[0] < 1.2);
            assert!(p[1] > -0.2 && p[1] < 1.2);
        }
    }

    #[test]
    fn running_example_matches_paper_size() {
        let ds = running_example(1);
        // 5 clusters x 5600 points + 50% noise = 56,000 points.
        assert_eq!(ds.len(), 56_000);
        assert!((ds.noise_fraction() - 0.5).abs() < 0.01);
        assert_eq!(ds.name, "running-example");
    }

    #[test]
    fn clusters_are_spatially_separated_from_each_other() {
        // Cluster centroids must be pairwise distinct and not degenerate.
        let ds = synthetic_benchmark(20.0, 400, 11);
        let mut centroids = Vec::new();
        for c in 0..SYNTHETIC_CLUSTERS {
            let members: Vec<&[f64]> = ds
                .points
                .rows()
                .zip(ds.labels.iter())
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| p)
                .collect();
            let cx = members.iter().map(|p| p[0]).sum::<f64>() / members.len() as f64;
            let cy = members.iter().map(|p| p[1]).sum::<f64>() / members.len() as f64;
            centroids.push((cx, cy));
        }
        for i in 0..centroids.len() {
            for j in (i + 1)..centroids.len() {
                let d = ((centroids[i].0 - centroids[j].0).powi(2)
                    + (centroids[i].1 - centroids[j].1).powi(2))
                .sqrt();
                assert!(d > 0.05, "clusters {i} and {j} are too close ({d})");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            synthetic_benchmark(60.0, 100, 9),
            synthetic_benchmark(60.0, 100, 9)
        );
        assert_ne!(
            synthetic_benchmark(60.0, 100, 9),
            synthetic_benchmark(60.0, 100, 10)
        );
    }

    #[test]
    fn runtime_scaling_grows_linearly() {
        let small = runtime_scaling_dataset(100, 2);
        let large = runtime_scaling_dataset(200, 2);
        assert_eq!(large.len(), 2 * small.len());
        assert!((small.noise_fraction() - 0.75).abs() < 0.01);
    }
}
