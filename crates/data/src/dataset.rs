//! The labeled dataset container used throughout the reproduction.

use adawave_api::{PointMatrix, PointsView};

use crate::rng::Rng;

/// A labeled point set.
///
/// `labels[i]` is the ground-truth class of point `i`; if
/// `noise_label` is `Some(l)`, points labeled `l` are ground-truth noise
/// (the synthetic benchmarks use this; the UCI surrogates do not).
///
/// The points live in a flat row-major [`PointMatrix`] — borrow them as a
/// [`PointsView`] via [`Dataset::view`] to feed any `fit`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable dataset name (used in experiment tables).
    pub name: String,
    /// The data points as one contiguous `n x d` row-major matrix.
    pub points: PointMatrix,
    /// Ground-truth class labels, one per point.
    pub labels: Vec<usize>,
    /// The label value (if any) that denotes ground-truth noise.
    pub noise_label: Option<usize>,
}

impl Dataset {
    /// Create a dataset, checking basic consistency.
    ///
    /// # Panics
    /// Panics if `points` and `labels` have different lengths. (Ragged
    /// points are unrepresentable in a [`PointMatrix`].)
    pub fn new(
        name: impl Into<String>,
        points: PointMatrix,
        labels: Vec<usize>,
        noise_label: Option<usize>,
    ) -> Self {
        assert_eq!(
            points.len(),
            labels.len(),
            "Dataset: points and labels must have the same length"
        );
        Self {
            name: name.into(),
            points,
            labels,
            noise_label,
        }
    }

    /// Create a dataset from nested rows (the ingestion boundary for
    /// `Vec<Vec<f64>>` data, mainly test fixtures and loaders).
    ///
    /// # Panics
    /// Panics if the rows are ragged or lengths mismatch.
    pub fn from_rows(
        name: impl Into<String>,
        rows: Vec<Vec<f64>>,
        labels: Vec<usize>,
        noise_label: Option<usize>,
    ) -> Self {
        let points = PointMatrix::from_rows(rows).expect("Dataset: ragged points");
        Self::new(name, points, labels, noise_label)
    }

    /// Borrow the points as a zero-copy view (what every `fit` takes).
    pub fn view(&self) -> PointsView<'_> {
        self.points.view()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.points.dims()
    }

    /// Number of distinct ground-truth labels (including the noise label).
    pub fn class_count(&self) -> usize {
        self.labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Number of distinct non-noise classes.
    pub fn cluster_count(&self) -> usize {
        let noise = self.noise_label;
        self.labels
            .iter()
            .filter(|&&l| Some(l) != noise)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Fraction of points labeled as noise (0.0 when there is no noise label).
    pub fn noise_fraction(&self) -> f64 {
        match self.noise_label {
            None => 0.0,
            Some(noise) => {
                if self.labels.is_empty() {
                    0.0
                } else {
                    self.labels.iter().filter(|&&l| l == noise).count() as f64
                        / self.labels.len() as f64
                }
            }
        }
    }

    /// Shuffle points and labels together, in place (order-insensitivity
    /// experiments).
    pub fn shuffle(&mut self, rng: &mut Rng) {
        let n = self.len();
        for i in (1..n).rev() {
            let j = rng.below(i + 1);
            self.points.swap_rows(i, j);
            self.labels.swap(i, j);
        }
    }

    /// A uniformly subsampled copy with at most `max_points` points
    /// (used to run O(n^2)/O(n^3) baselines on large datasets).
    pub fn subsample(&self, max_points: usize, rng: &mut Rng) -> Dataset {
        if self.len() <= max_points {
            return self.clone();
        }
        let idx = rng.sample_indices(self.len(), max_points);
        let points = self.points.select(&idx);
        let labels = idx.iter().map(|&i| self.labels[i]).collect();
        Dataset::new(
            format!("{}-sub{}", self.name, max_points),
            points,
            labels,
            self.noise_label,
        )
    }

    /// Append another dataset's points (labels are kept as-is).
    ///
    /// # Panics
    /// Panics if dimensionalities differ.
    pub fn extend(&mut self, other: Dataset) {
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(self.dims(), other.dims(), "extend: dimension mismatch");
        }
        self.points.append(&other.points);
        self.labels.extend(other.labels);
    }

    /// Per-class point counts, sorted by class id.
    pub fn class_sizes(&self) -> Vec<(usize, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for &l in &self.labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(
            "toy",
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![3.0, 3.0],
            ],
            vec![0, 0, 1, 2],
            Some(2),
        )
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dims(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.class_count(), 3);
        assert_eq!(d.cluster_count(), 2);
        assert_eq!(d.noise_fraction(), 0.25);
        assert_eq!(d.class_sizes(), vec![(0, 2), (1, 1), (2, 1)]);
        assert_eq!(d.view().len(), 4);
    }

    #[test]
    fn no_noise_label_means_zero_noise() {
        let mut d = toy();
        d.noise_label = None;
        assert_eq!(d.noise_fraction(), 0.0);
        assert_eq!(d.cluster_count(), 3);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        Dataset::from_rows("bad", vec![vec![0.0]], vec![0, 1], None);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_points_panic() {
        Dataset::from_rows("bad", vec![vec![0.0], vec![0.0, 1.0]], vec![0, 1], None);
    }

    #[test]
    fn shuffle_preserves_point_label_pairs() {
        let mut d = toy();
        let pairs = |d: &Dataset| -> std::collections::HashSet<String> {
            d.points
                .rows()
                .zip(d.labels.iter())
                .map(|(p, l)| format!("{p:?}-{l}"))
                .collect()
        };
        let pairs_before = pairs(&d);
        let mut rng = Rng::new(1);
        d.shuffle(&mut rng);
        assert_eq!(pairs_before, pairs(&d));
    }

    #[test]
    fn subsample_respects_bound_and_seed() {
        let mut big_points = PointMatrix::new(1);
        let mut labels = Vec::new();
        for i in 0..100 {
            big_points.push_row(&[i as f64]);
            labels.push(i % 3);
        }
        let d = Dataset::new("big", big_points, labels, None);
        let mut rng = Rng::new(5);
        let s = d.subsample(10, &mut rng);
        assert_eq!(s.len(), 10);
        assert_eq!(s.dims(), 1);
        let mut rng2 = Rng::new(5);
        let s2 = d.subsample(10, &mut rng2);
        assert_eq!(s, s2);
        // Subsampling below the current size is a no-op copy.
        let mut rng3 = Rng::new(5);
        assert_eq!(d.subsample(1000, &mut rng3).len(), 100);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = toy();
        let b = toy();
        a.extend(b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn extend_rejects_dimension_mismatch() {
        let mut a = toy();
        let b = Dataset::from_rows("1d", vec![vec![0.0]], vec![0], None);
        a.extend(b);
    }
}
