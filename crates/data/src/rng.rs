//! A small, deterministic pseudo-random number generator.
//!
//! xoshiro256++ seeded through splitmix64 — the standard recommendation for
//! reproducible simulation workloads. Implemented in-crate so that every
//! dataset and every randomized baseline is bit-for-bit reproducible from a
//! single `u64` seed without depending on the exact API of an external RNG
//! crate.

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[low, high)`.
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.uniform()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below: bound must be positive");
        // Rejection-free multiply-shift; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal deviate (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Draw until u1 is bounded away from zero to keep log finite.
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: the first k entries are a uniform sample.
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Fork an independent generator (e.g. one per cluster) deterministically.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_about_half() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_respects_bound_and_covers_values() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_with_scales_and_shifts() {
        let mut rng = Rng::new(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal_with(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn bernoulli_probability() {
        let mut rng = Rng::new(23);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(31);
        let mut items: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::new(37);
        let sample = rng.sample_indices(50, 20);
        assert_eq!(sample.len(), 20);
        let set: std::collections::HashSet<usize> = sample.iter().copied().collect();
        assert_eq!(set.len(), 20);
        assert!(sample.iter().all(|&i| i < 50));
        // full sample is a permutation
        let all = rng.sample_indices(10, 10);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_but_deterministic_streams() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..10 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // fork consumes state, so parents stay in sync too
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Rng::new(1).below(0);
    }
}
