//! # adawave-data
//!
//! Dataset substrate for the AdaWave reproduction.
//!
//! The paper evaluates on (a) a synthetic running example with five
//! irregular clusters buried in heavy uniform noise (Fig. 1/2), (b) a
//! parameterized synthetic benchmark whose noise percentage is swept from
//! 20% to 90% (Fig. 7/8), (c) a runtime-scaling family (Fig. 10), and (d)
//! nine UCI datasets (Table I) plus the Roadmap case study (Fig. 9). The
//! UCI repository is not reachable in this offline environment, so this
//! crate generates seeded *surrogates* with the same size, dimensionality
//! and class structure (see DESIGN.md §2 for the substitution rationale).
//!
//! Everything is deterministic given a `u64` seed: the random number
//! generator is an in-crate xoshiro256++ with a splitmix64 seeder, and
//! normal deviates come from the Box–Muller transform, so no external
//! numeric crate is required.
//!
//! ```
//! use adawave_data::synthetic::running_example;
//!
//! let ds = running_example(42);
//! assert_eq!(ds.dims(), 2);
//! assert!(ds.noise_fraction() > 0.4);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod csv;
pub mod dataset;
pub mod normalize;
pub mod rng;
pub mod scenes;
pub mod shapes;
pub mod synthetic;
pub mod uci;

pub use dataset::Dataset;
pub use normalize::{min_max_normalize, z_score_normalize};
pub use rng::Rng;
