//! Feature normalization helpers.
//!
//! The grid quantizer works on raw coordinates, but several baselines
//! (k-means, EM, spectral) behave much better when every attribute spans a
//! comparable range, so the experiment harness normalizes the UCI
//! surrogates before clustering.

/// Scale every column into `[0, 1]` (min-max normalization), in place.
/// Constant columns are set to 0.5.
pub fn min_max_normalize(points: &mut [Vec<f64>]) {
    if points.is_empty() {
        return;
    }
    let dims = points[0].len();
    for j in 0..dims {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in points.iter() {
            lo = lo.min(p[j]);
            hi = hi.max(p[j]);
        }
        let range = hi - lo;
        for p in points.iter_mut() {
            p[j] = if range > 0.0 {
                (p[j] - lo) / range
            } else {
                0.5
            };
        }
    }
}

/// Standardize every column to zero mean and unit variance, in place.
/// Constant columns are centered only.
pub fn z_score_normalize(points: &mut [Vec<f64>]) {
    if points.is_empty() {
        return;
    }
    let dims = points[0].len();
    let n = points.len() as f64;
    for j in 0..dims {
        let mean: f64 = points.iter().map(|p| p[j]).sum::<f64>() / n;
        let var: f64 = points.iter().map(|p| (p[j] - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        for p in points.iter_mut() {
            p[j] -= mean;
            if std > 1e-12 {
                p[j] /= std;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_maps_to_unit_interval() {
        let mut pts = vec![vec![0.0, 100.0], vec![5.0, 200.0], vec![10.0, 150.0]];
        min_max_normalize(&mut pts);
        for p in &pts {
            for &v in p {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(pts[0][0], 0.0);
        assert_eq!(pts[2][0], 1.0);
        assert_eq!(pts[1][1], 1.0);
    }

    #[test]
    fn min_max_constant_column() {
        let mut pts = vec![vec![7.0], vec![7.0]];
        min_max_normalize(&mut pts);
        assert_eq!(pts[0][0], 0.5);
        assert_eq!(pts[1][0], 0.5);
    }

    #[test]
    fn z_score_zero_mean_unit_variance() {
        let mut pts = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        z_score_normalize(&mut pts);
        let n = pts.len() as f64;
        let mean: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / n;
        let var: f64 = pts.iter().map(|p| p[0] * p[0]).sum::<f64>() / n;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut pts: Vec<Vec<f64>> = vec![];
        min_max_normalize(&mut pts);
        z_score_normalize(&mut pts);
        assert!(pts.is_empty());
    }

    #[test]
    fn normalization_preserves_ordering_within_column() {
        let mut pts = vec![vec![3.0], vec![1.0], vec![2.0]];
        min_max_normalize(&mut pts);
        assert!(pts[1][0] < pts[2][0] && pts[2][0] < pts[0][0]);
    }
}
