//! Feature normalization helpers.
//!
//! The grid quantizer works on raw coordinates, but several baselines
//! (k-means, EM, spectral) behave much better when every attribute spans a
//! comparable range, so the experiment harness normalizes the UCI
//! surrogates before clustering. Both helpers operate column-wise on the
//! flat row-major [`PointMatrix`] buffer.

use adawave_api::PointMatrix;

/// Scale every column into `[0, 1]` (min-max normalization), in place.
/// Constant columns are set to 0.5.
pub fn min_max_normalize(points: &mut PointMatrix) {
    let dims = points.dims();
    if points.is_empty() || dims == 0 {
        return;
    }
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for p in points.rows() {
        for (j, &v) in p.iter().enumerate() {
            lo[j] = lo[j].min(v);
            hi[j] = hi[j].max(v);
        }
    }
    for p in points.as_mut_slice().chunks_exact_mut(dims) {
        for (j, v) in p.iter_mut().enumerate() {
            let range = hi[j] - lo[j];
            *v = if range > 0.0 {
                (*v - lo[j]) / range
            } else {
                0.5
            };
        }
    }
}

/// Standardize every column to zero mean and unit variance, in place.
/// Constant columns are centered only. (Delegates to the shared flat-buffer
/// kernel in `adawave-linalg` so the numeric behavior cannot drift between
/// the data loaders and library callers.)
pub fn z_score_normalize(points: &mut PointMatrix) {
    let dims = points.dims();
    adawave_linalg::standardize_columns(points.as_mut_slice(), dims);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> PointMatrix {
        PointMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn min_max_maps_to_unit_interval() {
        let mut pts = matrix(vec![vec![0.0, 100.0], vec![5.0, 200.0], vec![10.0, 150.0]]);
        min_max_normalize(&mut pts);
        for p in pts.rows() {
            for &v in p {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(pts[0][0], 0.0);
        assert_eq!(pts[2][0], 1.0);
        assert_eq!(pts[1][1], 1.0);
    }

    #[test]
    fn min_max_constant_column() {
        let mut pts = matrix(vec![vec![7.0], vec![7.0]]);
        min_max_normalize(&mut pts);
        assert_eq!(pts[0][0], 0.5);
        assert_eq!(pts[1][0], 0.5);
    }

    #[test]
    fn z_score_zero_mean_unit_variance() {
        let mut pts = matrix(vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        z_score_normalize(&mut pts);
        let n = pts.len() as f64;
        let mean: f64 = pts.rows().map(|p| p[0]).sum::<f64>() / n;
        let var: f64 = pts.rows().map(|p| p[0] * p[0]).sum::<f64>() / n;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut pts = PointMatrix::new(0);
        min_max_normalize(&mut pts);
        z_score_normalize(&mut pts);
        assert!(pts.is_empty());
    }

    #[test]
    fn normalization_preserves_ordering_within_column() {
        let mut pts = matrix(vec![vec![3.0], vec![1.0], vec![2.0]]);
        min_max_normalize(&mut pts);
        assert!(pts[1][0] < pts[2][0] && pts[2][0] < pts[0][0]);
    }
}
