//! Primitive cluster-shape generators.
//!
//! The synthetic experiments of the paper combine Gaussian ellipses,
//! overlapping circular (ring) distributions, parallel sloping line
//! segments and a uniform noise background. Each generator appends points
//! in place so callers can compose arbitrary scenes; output goes straight
//! into a flat row-major [`PointMatrix`], so building a scene performs no
//! per-point heap allocation.

use adawave_api::PointMatrix;

use crate::rng::Rng;

/// Append `count` points from an axis-aligned Gaussian blob.
pub fn gaussian_blob(
    out: &mut PointMatrix,
    rng: &mut Rng,
    center: &[f64],
    std_dev: &[f64],
    count: usize,
) {
    assert_eq!(center.len(), std_dev.len());
    let mut row = vec![0.0; center.len()];
    for _ in 0..count {
        for ((v, &c), &s) in row.iter_mut().zip(center.iter()).zip(std_dev.iter()) {
            *v = rng.normal_with(c, s);
        }
        out.push_row(&row);
    }
}

/// Append `count` points from a rotated 2-D Gaussian ellipse.
///
/// `axes` are the standard deviations along the major/minor axes and
/// `angle` is the rotation in radians.
pub fn gaussian_ellipse(
    out: &mut PointMatrix,
    rng: &mut Rng,
    center: (f64, f64),
    axes: (f64, f64),
    angle: f64,
    count: usize,
) {
    let (cx, cy) = center;
    let (sa, sb) = axes;
    let (sin, cos) = angle.sin_cos();
    for _ in 0..count {
        let u = rng.normal() * sa;
        let v = rng.normal() * sb;
        out.push_row(&[cx + u * cos - v * sin, cy + u * sin + v * cos]);
    }
}

/// Append `count` points distributed on a 2-D ring (annulus) of the given
/// mean radius; the radius is jittered with Gaussian noise `radial_std`.
pub fn ring(
    out: &mut PointMatrix,
    rng: &mut Rng,
    center: (f64, f64),
    radius: f64,
    radial_std: f64,
    count: usize,
) {
    let (cx, cy) = center;
    for _ in 0..count {
        let theta = rng.uniform_range(0.0, 2.0 * std::f64::consts::PI);
        let r = rng.normal_with(radius, radial_std);
        out.push_row(&[cx + r * theta.cos(), cy + r * theta.sin()]);
    }
}

/// Append `count` points scattered around the straight segment from `start`
/// to `end` with perpendicular Gaussian jitter `thickness`.
pub fn line_segment(
    out: &mut PointMatrix,
    rng: &mut Rng,
    start: (f64, f64),
    end: (f64, f64),
    thickness: f64,
    count: usize,
) {
    let (x0, y0) = start;
    let (x1, y1) = end;
    let dx = x1 - x0;
    let dy = y1 - y0;
    let len = (dx * dx + dy * dy).sqrt().max(1e-12);
    // Unit normal of the segment.
    let nx = -dy / len;
    let ny = dx / len;
    for _ in 0..count {
        let t = rng.uniform();
        let jitter = rng.normal_with(0.0, thickness);
        out.push_row(&[x0 + t * dx + jitter * nx, y0 + t * dy + jitter * ny]);
    }
}

/// Append `count` uniformly distributed points inside the axis-aligned box
/// `[low, high)^d` given per-dimension bounds.
pub fn uniform_box(out: &mut PointMatrix, rng: &mut Rng, low: &[f64], high: &[f64], count: usize) {
    assert_eq!(low.len(), high.len());
    let mut row = vec![0.0; low.len()];
    for _ in 0..count {
        for ((v, &lo), &hi) in row.iter_mut().zip(low.iter()).zip(high.iter()) {
            *v = rng.uniform_range(lo, hi);
        }
        out.push_row(&row);
    }
}

/// Append `count` points from two interleaving half-moons (a classic
/// non-convex benchmark shape), scaled into roughly `[0, 1]^2`.
/// Returns the boundary index: points `0..boundary` belong to the first
/// moon, the rest to the second.
pub fn two_moons(out: &mut PointMatrix, rng: &mut Rng, noise: f64, count: usize) -> usize {
    let half = count / 2;
    for i in 0..count {
        let first = i < half;
        let t = rng.uniform_range(0.0, std::f64::consts::PI);
        let (mut x, mut y) = if first {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        x += rng.normal_with(0.0, noise);
        y += rng.normal_with(0.0, noise);
        out.push_row(&[0.3 * x + 0.35, 0.3 * y + 0.35]);
    }
    half
}

/// Append `count` points along an Archimedean spiral with Gaussian jitter.
pub fn spiral(
    out: &mut PointMatrix,
    rng: &mut Rng,
    center: (f64, f64),
    turns: f64,
    max_radius: f64,
    jitter: f64,
    count: usize,
) {
    let (cx, cy) = center;
    for _ in 0..count {
        let t = rng.uniform();
        let theta = t * turns * 2.0 * std::f64::consts::PI;
        let r = t * max_radius;
        out.push_row(&[
            cx + r * theta.cos() + rng.normal_with(0.0, jitter),
            cy + r * theta.sin() + rng.normal_with(0.0, jitter),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(points: &PointMatrix, dim: usize) -> f64 {
        points.rows().map(|p| p[dim]).sum::<f64>() / points.len() as f64
    }

    #[test]
    fn gaussian_blob_centering() {
        let mut rng = Rng::new(1);
        let mut pts = PointMatrix::new(2);
        gaussian_blob(&mut pts, &mut rng, &[5.0, -2.0], &[0.1, 0.2], 5000);
        assert_eq!(pts.len(), 5000);
        assert!((mean(&pts, 0) - 5.0).abs() < 0.02);
        assert!((mean(&pts, 1) - -2.0).abs() < 0.02);
    }

    #[test]
    fn ellipse_is_rotated() {
        let mut rng = Rng::new(2);
        let mut pts = PointMatrix::new(2);
        // Strongly anisotropic ellipse rotated 45 degrees: x and y become correlated.
        gaussian_ellipse(
            &mut pts,
            &mut rng,
            (0.0, 0.0),
            (1.0, 0.05),
            std::f64::consts::FRAC_PI_4,
            4000,
        );
        let mx = mean(&pts, 0);
        let my = mean(&pts, 1);
        let cov: f64 =
            pts.rows().map(|p| (p[0] - mx) * (p[1] - my)).sum::<f64>() / pts.len() as f64;
        assert!(cov > 0.2, "expected strong positive correlation, got {cov}");
    }

    #[test]
    fn ring_points_have_expected_radius() {
        let mut rng = Rng::new(3);
        let mut pts = PointMatrix::new(2);
        ring(&mut pts, &mut rng, (1.0, 1.0), 2.0, 0.01, 3000);
        let mean_r: f64 = pts
            .rows()
            .map(|p| ((p[0] - 1.0).powi(2) + (p[1] - 1.0).powi(2)).sqrt())
            .sum::<f64>()
            / pts.len() as f64;
        assert!((mean_r - 2.0).abs() < 0.02, "mean radius {mean_r}");
        // A ring is hollow: very few points near the centre.
        let near_center = pts
            .rows()
            .filter(|p| ((p[0] - 1.0).powi(2) + (p[1] - 1.0).powi(2)).sqrt() < 1.0)
            .count();
        assert!(near_center < 10);
    }

    #[test]
    fn line_segment_stays_near_the_line() {
        let mut rng = Rng::new(4);
        let mut pts = PointMatrix::new(2);
        line_segment(&mut pts, &mut rng, (0.0, 0.0), (10.0, 10.0), 0.01, 2000);
        for p in pts.rows() {
            // Distance to the line y = x is |y - x| / sqrt(2).
            let dist = (p[1] - p[0]).abs() / std::f64::consts::SQRT_2;
            assert!(dist < 0.1);
        }
        // Covers the whole extent of the segment.
        assert!(pts.rows().any(|p| p[0] < 1.0));
        assert!(pts.rows().any(|p| p[0] > 9.0));
    }

    #[test]
    fn uniform_box_bounds() {
        let mut rng = Rng::new(5);
        let mut pts = PointMatrix::new(3);
        uniform_box(
            &mut pts,
            &mut rng,
            &[-1.0, 2.0, 0.0],
            &[1.0, 3.0, 10.0],
            1000,
        );
        for p in pts.rows() {
            assert!(p[0] >= -1.0 && p[0] < 1.0);
            assert!(p[1] >= 2.0 && p[1] < 3.0);
            assert!(p[2] >= 0.0 && p[2] < 10.0);
        }
    }

    #[test]
    fn two_moons_returns_split_and_overlapping_x_ranges() {
        let mut rng = Rng::new(6);
        let mut pts = PointMatrix::new(2);
        let split = two_moons(&mut pts, &mut rng, 0.01, 1000);
        assert_eq!(split, 500);
        assert_eq!(pts.len(), 1000);
        // The two moons interleave horizontally (not linearly separable in x).
        let first_max_x = pts.rows().take(500).map(|p| p[0]).fold(f64::MIN, f64::max);
        let second_min_x = pts.rows().skip(500).map(|p| p[0]).fold(f64::MAX, f64::min);
        assert!(first_max_x > second_min_x);
    }

    #[test]
    fn spiral_radius_grows() {
        let mut rng = Rng::new(7);
        let mut pts = PointMatrix::new(2);
        spiral(&mut pts, &mut rng, (0.0, 0.0), 2.0, 5.0, 0.0, 500);
        let max_r = pts
            .rows()
            .map(|p| (p[0] * p[0] + p[1] * p[1]).sqrt())
            .fold(f64::MIN, f64::max);
        assert!(max_r > 4.0 && max_r <= 5.0 + 1e-9);
    }

    #[test]
    fn generators_are_deterministic() {
        let gen = |seed| {
            let mut rng = Rng::new(seed);
            let mut pts = PointMatrix::new(2);
            ring(&mut pts, &mut rng, (0.0, 0.0), 1.0, 0.1, 10);
            gaussian_blob(&mut pts, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 10);
            pts
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }
}
