//! Integration tests: every lint fires at the exact `file:line` the
//! fixture workspace plants it at, and the live workspace self-audits
//! clean.

use std::path::Path;

use adawave_audit::{audit_workspace, find_root, Finding};

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("workspace")
}

fn triples(findings: &[Finding]) -> Vec<(String, usize, &'static str)> {
    findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.lint))
        .collect()
}

#[test]
fn every_lint_fires_at_the_planted_line() {
    let findings = audit_workspace(&fixture_root(), None).expect("fixture workspace parses");
    let expected: Vec<(String, usize, &'static str)> = vec![
        ("grid/src/bad_clock.rs".into(), 2, "wall-clock"),
        ("grid/src/bad_env.rs".into(), 2, "env-read"),
        ("grid/src/bad_escape.rs".into(), 1, "audit-escape"),
        ("grid/src/bad_escape.rs".into(), 3, "raw-thread"),
        ("grid/src/bad_escape.rs".into(), 6, "audit-escape"),
        ("grid/src/bad_float.rs".into(), 2, "float-sort-unwrap"),
        (
            "grid/src/bad_iter.rs".into(),
            4,
            "nondeterministic-iteration",
        ),
        ("grid/src/bad_thread.rs".into(), 2, "raw-thread"),
        ("serve/src/json.rs".into(), 2, "panic-in-request-path"),
        ("serve/src/lib.rs".into(), 1, "crate-hygiene"),
        ("serve/src/lib.rs".into(), 1, "crate-hygiene"),
    ];
    assert_eq!(triples(&findings), expected, "{findings:#?}");
}

#[test]
fn escape_diagnostics_carry_the_right_messages() {
    let findings = audit_workspace(&fixture_root(), None).unwrap();
    let escapes: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.file == "grid/src/bad_escape.rs")
        .collect();
    assert!(escapes[0].message.contains("needs a reason"), "{escapes:?}");
    assert!(escapes[2].message.contains("unused escape"), "{escapes:?}");
}

#[test]
fn lint_filter_restricts_the_pass() {
    let only_clock =
        audit_workspace(&fixture_root(), Some(&["wall-clock"])).expect("filtered audit runs");
    let lints: Vec<&str> = only_clock.iter().map(|f| f.lint).collect();
    // The named lint plus escape hygiene (the unused allow no longer has
    // its raw-thread finding suppressed -- escape diagnostics always run).
    assert!(lints.contains(&"wall-clock"), "{lints:?}");
    assert!(!lints.contains(&"float-sort-unwrap"), "{lints:?}");
}

#[test]
fn rendered_findings_use_the_diagnostic_format() {
    let findings = audit_workspace(&fixture_root(), None).unwrap();
    let rendered = findings[0].to_string();
    assert!(
        rendered.starts_with("grid/src/bad_clock.rs:2: wall-clock: "),
        "{rendered}"
    );
}

#[test]
fn the_live_workspace_self_audits_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("audit crate lives in the adawave workspace");
    let findings = audit_workspace(&root, None).expect("live workspace parses");
    assert!(
        findings.is_empty(),
        "the workspace must self-audit clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
