// Fixture crate root with neither hygiene attribute: crate-hygiene must
// report both, anchored at line 1.
pub mod json;
