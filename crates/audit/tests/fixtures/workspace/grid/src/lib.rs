//! Fixture crate root: carries both hygiene attributes, so only the
//! deliberately-bad sibling files produce findings.
#![deny(unsafe_code)]
#![deny(missing_docs)]
