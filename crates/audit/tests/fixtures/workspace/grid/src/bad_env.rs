pub fn home() -> Option<String> {
    std::env::var("HOME").ok()
}
