// audit:allow(raw-thread)
pub fn spawn_one() {
    std::thread::spawn(|| {});
}

// audit:allow(nondeterministic-iteration) unused: nothing below iterates anything
pub fn idle() {}
