use std::collections::HashMap;

pub fn sum(m: &HashMap<u64, f64>) -> f64 {
    m.values().sum()
}
