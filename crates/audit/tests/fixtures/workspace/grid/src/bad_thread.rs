pub fn go() {
    std::thread::spawn(|| {});
}
