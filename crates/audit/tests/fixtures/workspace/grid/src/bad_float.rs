pub fn sort(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
