//! Standalone front-end for the workspace audit.
//!
//! ```text
//! adawave-audit [--root <dir>] [--list] [lint-name ...]
//! ```
//!
//! With no lint names the full table runs. Exit codes: 0 clean,
//! 1 findings (or an I/O failure), 2 usage error.

#![deny(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use adawave_audit::{audit_workspace, find_root, list_text, resolve_lint_names};

const USAGE: &str = "\
adawave-audit — static analysis for the AdaWave workspace contracts

USAGE:
  adawave-audit [--root <dir>] [--list] [lint-name ...]

  --root <dir>   audit the workspace containing <dir> (default: cwd)
  --list         print the lint table and exit
  lint-name ...  restrict the pass to the named lints

Exit codes: 0 clean, 1 findings, 2 usage.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("adawave-audit: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Parse arguments and run the audit; `Err` is a usage problem (exit 2).
fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut root_hint: Option<PathBuf> = None;
    let mut lint_names: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                print!("{}", list_text());
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            "--root" => {
                let dir = iter.next().ok_or("--root needs a directory operand")?;
                root_hint = Some(PathBuf::from(dir));
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option '{flag}' (try --help)"));
            }
            name => lint_names.push(name.to_string()),
        }
    }

    let filter = resolve_lint_names(&lint_names)?;
    let filter = (!filter.is_empty()).then_some(filter.as_slice());

    let start = root_hint
        .or_else(|| std::env::current_dir().ok())
        .ok_or("cannot determine the working directory")?;
    let root = find_root(&start).ok_or_else(|| {
        format!(
            "no workspace Cargo.toml at or above {} (use --root)",
            start.display()
        )
    })?;

    match audit_workspace(&root, filter) {
        Ok(findings) if findings.is_empty() => {
            println!("adawave-audit: workspace clean");
            Ok(ExitCode::SUCCESS)
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("adawave-audit: {} finding(s)", findings.len());
            Ok(ExitCode::from(1))
        }
        Err(msg) => {
            eprintln!("adawave-audit: {msg}");
            Ok(ExitCode::from(1))
        }
    }
}
