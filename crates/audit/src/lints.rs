//! The lint table and the per-file checking pass.
//!
//! Every lint enforces one of the repository's machine-checked contracts
//! (bit-identical results across thread counts and shard partitions, the
//! serve daemon's no-panic request path, hex-float persistence). The
//! checks are textual pattern matches over [lexed](crate::lexer) source —
//! comments and string literals never fire — with a name-based heuristic
//! for hash-container iteration. A site that is genuinely safe carries an
//! inline escape:
//!
//! ```text
//! // audit:allow(lint-name) reason why this site cannot break the contract
//! ```
//!
//! placed on the offending line or on its own line directly above. The
//! escape is itself linted: the reason is mandatory, the lint name must
//! exist, and an allow that suppresses nothing is reported as unused.

use std::path::Path;

use crate::lexer::LexedFile;
use adawave_api::closest_matches;

/// Crates whose output is part of a clustering result; hash-order
/// iteration or wall-clock reads here can silently break the determinism
/// contract pinned by `tests/parallel_determinism.rs` and the golden
/// scenario corpus.
const RESULT_CRATES: &[&str] = &[
    "adawave-grid",
    "adawave-core",
    "adawave-baselines",
    "adawave-stream",
    "adawave-metrics",
    "adawave-wavelet",
];

/// Files forming the serve daemon's request path, plus the shared artifact
/// payload reader every deserialization funnels through: a panic in any of
/// them turns a bad request or a corrupt artifact into a dropped
/// connection instead of a typed error.
const REQUEST_PATH: &[(&str, &str)] = &[
    ("adawave-serve", "src/http.rs"),
    ("adawave-serve", "src/json.rs"),
    ("adawave-serve", "src/server.rs"),
    ("adawave-serve", "src/store.rs"),
    ("adawave-api", "src/artifact.rs"),
];

/// The name findings about the escape mechanism itself are filed under.
pub const ESCAPE_LINT: &str = "audit-escape";

/// One entry of the lint table.
#[derive(Debug, Clone, Copy)]
pub struct Lint {
    /// Lint name as used in diagnostics and `audit:allow(..)`.
    pub name: &'static str,
    /// One-line description for `--list`.
    pub summary: &'static str,
    /// The repository contract the lint enforces.
    pub contract: &'static str,
}

/// Every lint the audit knows, in diagnostic order.
pub const LINTS: &[Lint] = &[
    Lint {
        name: "float-sort-unwrap",
        summary: "partial_cmp(..).unwrap()/.expect(..) in comparator position",
        contract: "float discipline: comparators must use f64::total_cmp, which is total and \
                   panic-free, instead of panicking on NaN mid-sort",
    },
    Lint {
        name: "nondeterministic-iteration",
        summary: "iterating a HashMap/HashSet in a result-producing crate",
        contract: "determinism: hash iteration order is random-seeded per process, so anything \
                   order-sensitive (float sums, first-match scans, id assignment) diverges \
                   between runs",
    },
    Lint {
        name: "raw-thread",
        summary: "std::thread::{spawn,scope,Builder} outside adawave-runtime",
        contract: "determinism: all result-producing parallelism must go through the Runtime's \
                   fixed-chunk primitives so chunk boundaries never depend on thread count",
    },
    Lint {
        name: "panic-in-request-path",
        summary: "unwrap/expect/panic!/unreachable! in the serve request path",
        contract: "panic safety: the daemon's request path and the artifact PayloadReader must \
                   return typed errors; catch_unwind is a backstop, not a license",
    },
    Lint {
        name: "env-read",
        summary: "std::env::var outside adawave-runtime",
        contract: "determinism: environment configuration is read once by the Runtime \
                   (ADAWAVE_THREADS); ad-hoc env reads make results depend on ambient state",
    },
    Lint {
        name: "wall-clock",
        summary: "Instant::now/SystemTime in a result-producing crate",
        contract: "determinism: clock reads in result-producing code make output \
                   time-dependent; timing belongs in bench/cli layers",
    },
    Lint {
        name: "crate-hygiene",
        summary: "crate root missing #![deny(unsafe_code)] / #![deny(missing_docs)]",
        contract: "workspace hygiene: every crate root pins the no-unsafe and \
                   all-items-documented gates the CI lint job relies on",
    },
];

/// A diagnostic: one lint firing at one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (a `LINTS` entry or [`ESCAPE_LINT`]).
    pub lint: &'static str,
    /// Human explanation of this particular site.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Look up a lint by name.
pub fn lint_by_name(name: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.name == name)
}

/// "did you mean ...?" suffix for an unknown lint name (empty when nothing
/// is close).
pub fn unknown_lint_hint(name: &str) -> String {
    let close = closest_matches(name, LINTS.iter().map(|l| l.name));
    match close.as_slice() {
        [] => String::new(),
        names => format!(" — did you mean {}?", names.join(" or ")),
    }
}

/// Run every applicable lint over one file and apply its escapes.
///
/// `rel_path` is the file's path relative to the *member* directory (e.g.
/// `src/json.rs`); `display_path` is what diagnostics print (usually the
/// workspace-relative path). `filter` restricts the pass to a subset of
/// lint names; escape diagnostics are always produced.
pub fn audit_file(
    crate_name: &str,
    rel_path: &Path,
    display_path: &str,
    source: &str,
    filter: Option<&[&str]>,
) -> Vec<Finding> {
    let lexed = LexedFile::new(source);
    let enabled = |name: &str| filter.is_none_or(|f| f.contains(&name));

    let mut raw: Vec<Finding> = Vec::new();
    if enabled("float-sort-unwrap") {
        float_sort_unwrap(&lexed, display_path, &mut raw);
    }
    if enabled("nondeterministic-iteration") && RESULT_CRATES.contains(&crate_name) {
        nondeterministic_iteration(&lexed, display_path, &mut raw);
    }
    if enabled("raw-thread") && crate_name != "adawave-runtime" {
        pattern_lint(
            &lexed,
            display_path,
            "raw-thread",
            &["thread::spawn", "thread::scope", "thread::Builder"],
            "raw thread primitive outside adawave-runtime; use Runtime's fixed-chunk \
             par_* methods (or escape a non-result worker pool with a reason)",
            &mut raw,
        );
    }
    let in_request_path = REQUEST_PATH
        .iter()
        .any(|&(c, p)| c == crate_name && rel_path == Path::new(p));
    if enabled("panic-in-request-path") && in_request_path {
        panic_in_request_path(&lexed, display_path, &mut raw);
    }
    if enabled("env-read") && crate_name != "adawave-runtime" {
        pattern_lint(
            &lexed,
            display_path,
            "env-read",
            &["env::var"],
            "environment read outside adawave-runtime; thread configuration through \
             Runtime::from_env or explicit parameters",
            &mut raw,
        );
    }
    if enabled("wall-clock") && RESULT_CRATES.contains(&crate_name) {
        pattern_lint(
            &lexed,
            display_path,
            "wall-clock",
            &["Instant::now", "SystemTime::now", "SystemTime::UNIX_EPOCH"],
            "clock read in a result-producing crate; timing belongs in the bench/cli layers",
            &mut raw,
        );
    }
    if enabled("crate-hygiene") && rel_path == Path::new("src/lib.rs") {
        for attr in ["#![deny(unsafe_code)]", "#![deny(missing_docs)]"] {
            if !lexed.stripped.contains(attr) {
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: 1,
                    lint: "crate-hygiene",
                    message: format!("crate root does not carry {attr}"),
                });
            }
        }
    }

    // Lints never fire inside #[cfg(test)] items: test code legitimately
    // unwraps, spawns threads, and reads clocks.
    raw.retain(|f| !lexed.is_test_line(f.line));

    apply_escapes(&lexed, display_path, raw)
}

// ---------------------------------------------------------------------------
// escapes
// ---------------------------------------------------------------------------

struct Allow {
    comment_line: usize,
    bound_line: usize,
    lint: String,
    reason_given: bool,
    used: bool,
}

/// Parse `audit:allow(..)` escapes and use them to suppress findings;
/// report malformed and unused escapes as [`ESCAPE_LINT`] findings.
fn apply_escapes(lexed: &LexedFile, display_path: &str, raw: Vec<Finding>) -> Vec<Finding> {
    let code_lines: Vec<&str> = lexed.stripped.lines().collect();
    let has_code = |line_1: usize| {
        code_lines
            .get(line_1 - 1)
            .is_some_and(|l| !l.trim().is_empty())
    };

    let mut allows: Vec<Allow> = Vec::new();
    let mut escape_findings: Vec<Finding> = Vec::new();
    for (line, text) in &lexed.comments {
        if lexed.is_test_line(*line) {
            continue;
        }
        // Escapes live in plain comments only; doc comments may *describe*
        // the escape syntax without arming it.
        let is_doc = ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| text.starts_with(p) && !text.starts_with("/**/"));
        if is_doc {
            continue;
        }
        let mut rest = text.as_str();
        while let Some(pos) = rest.find("audit:allow(") {
            rest = &rest[pos + "audit:allow(".len()..];
            let Some(close) = rest.find(')') else {
                escape_findings.push(Finding {
                    file: display_path.to_string(),
                    line: *line,
                    lint: ESCAPE_LINT,
                    message: "malformed escape: missing ')' after audit:allow(".to_string(),
                });
                break;
            };
            let name = rest[..close].trim().to_string();
            let reason = rest[close + 1..].trim_start_matches([':', '-', ' ']).trim();
            // The reason ends at the next escape in the same comment, if any.
            let reason = reason.split("audit:allow(").next().unwrap_or("").trim();
            if lint_by_name(&name).is_none() {
                escape_findings.push(Finding {
                    file: display_path.to_string(),
                    line: *line,
                    lint: ESCAPE_LINT,
                    message: format!(
                        "escape names unknown lint '{name}'{}",
                        unknown_lint_hint(&name)
                    ),
                });
                rest = &rest[close + 1..];
                continue;
            }
            // A trailing comment binds to its own line; a comment-only
            // line binds to the next line that has code.
            let bound_line = if has_code(*line) {
                *line
            } else {
                (*line + 1..=code_lines.len())
                    .find(|&l| has_code(l))
                    .unwrap_or(*line)
            };
            allows.push(Allow {
                comment_line: *line,
                bound_line,
                lint: name,
                reason_given: !reason.is_empty(),
                used: false,
            });
            rest = &rest[close + 1..];
        }
    }

    let mut kept: Vec<Finding> = Vec::new();
    for finding in raw {
        let suppressed = allows.iter_mut().any(|a| {
            let hit = a.lint == finding.lint && a.bound_line == finding.line;
            if hit {
                a.used = true;
            }
            hit
        });
        if !suppressed {
            kept.push(finding);
        }
    }
    for allow in &allows {
        if !allow.reason_given {
            kept.push(Finding {
                file: display_path.to_string(),
                line: allow.comment_line,
                lint: ESCAPE_LINT,
                message: format!(
                    "audit:allow({}) needs a reason after the closing parenthesis",
                    allow.lint
                ),
            });
        } else if !allow.used {
            kept.push(Finding {
                file: display_path.to_string(),
                line: allow.comment_line,
                lint: ESCAPE_LINT,
                message: format!(
                    "unused escape: no {} finding on line {} to suppress",
                    allow.lint, allow.bound_line
                ),
            });
        }
    }
    kept.extend(escape_findings);
    kept.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    kept
}

// ---------------------------------------------------------------------------
// individual checks
// ---------------------------------------------------------------------------

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether the occurrence of `needle` at `pos` is token-bounded (not part
/// of a longer identifier/path segment).
fn word_bounded(text: &[u8], pos: usize, len: usize) -> bool {
    let before_ok = pos == 0 || !is_ident(text[pos - 1]);
    let after_ok = pos + len >= text.len() || !is_ident(text[pos + len]);
    before_ok && after_ok
}

/// Byte index after skipping whitespace (newlines included) from `i`.
fn skip_ws(text: &[u8], mut i: usize) -> usize {
    while i < text.len() && text[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Byte index just past a balanced `( .. )` group starting at `open`.
fn skip_parens(text: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// `partial_cmp( .. )` immediately followed by `.unwrap()` or `.expect(`.
fn float_sort_unwrap(lexed: &LexedFile, display_path: &str, out: &mut Vec<Finding>) {
    let text = lexed.stripped.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = lexed.stripped[search..].find("partial_cmp") {
        let pos = search + pos;
        search = pos + "partial_cmp".len();
        if !word_bounded(text, pos, "partial_cmp".len()) {
            continue;
        }
        let after = skip_ws(text, pos + "partial_cmp".len());
        if text.get(after) != Some(&b'(') {
            continue;
        }
        let next = skip_ws(text, skip_parens(text, after));
        let tail = &lexed.stripped[next.min(lexed.stripped.len())..];
        if tail.starts_with(".unwrap") || tail.starts_with(".expect") {
            out.push(Finding {
                file: display_path.to_string(),
                line: lexed.line_of(pos),
                lint: "float-sort-unwrap",
                message: "partial_cmp(..).unwrap() panics on NaN and is not a total order; \
                          use f64::total_cmp (or escape with a finite-input argument)"
                    .to_string(),
            });
        }
    }
}

/// Flag token occurrences from `patterns` anywhere in the file.
fn pattern_lint(
    lexed: &LexedFile,
    display_path: &str,
    lint: &'static str,
    patterns: &[&str],
    message: &str,
    out: &mut Vec<Finding>,
) {
    let text = lexed.stripped.as_bytes();
    for pattern in patterns {
        let mut search = 0usize;
        while let Some(pos) = lexed.stripped[search..].find(pattern) {
            let pos = search + pos;
            search = pos + pattern.len();
            if word_bounded(text, pos, pattern.len()) {
                out.push(Finding {
                    file: display_path.to_string(),
                    line: lexed.line_of(pos),
                    lint,
                    message: message.to_string(),
                });
            }
        }
    }
}

/// `.unwrap()` / `.expect(` / panic-family macros in the request path.
fn panic_in_request_path(lexed: &LexedFile, display_path: &str, out: &mut Vec<Finding>) {
    let text = lexed.stripped.as_bytes();
    for (pattern, what) in [
        (".unwrap()", "unwrap"),
        (".expect(", "expect"),
        ("panic!", "panic!"),
        ("unreachable!", "unreachable!"),
        ("todo!", "todo!"),
        ("unimplemented!", "unimplemented!"),
    ] {
        let mut search = 0usize;
        while let Some(pos) = lexed.stripped[search..].find(pattern) {
            let pos = search + pos;
            search = pos + pattern.len();
            // `.unwrap()` must not also match `.unwrap_or()` (the pattern
            // ends in '('/')' so word-bounding applies to macro names).
            let name_start = pos + usize::from(pattern.starts_with('.'));
            let name_len = what.trim_end_matches('!').len();
            if !word_bounded(text, name_start, name_len) {
                continue;
            }
            out.push(Finding {
                file: display_path.to_string(),
                line: lexed.line_of(pos),
                lint: "panic-in-request-path",
                message: format!(
                    "{what} in the serve request path; return a typed error instead \
                     (catch_unwind is a backstop, not a license)"
                ),
            });
        }
    }
}

/// Hash-container iteration, via a name-based heuristic.
///
/// Names are considered hash-typed when they are annotated `: HashMap<..>`
/// / `: HashSet<..>` (fields, lets, params — through `&`/`mut` and the
/// `std::collections::` prefix) or initialized from `HashMap::..` /
/// `HashSet::..` constructors. Occurrences of a tracked name followed by
/// an iteration method, or iterated by a `for` loop, are flagged. The
/// heuristic is deliberately name-based — it cannot see through Vec
/// indexing or function returns — so keep hash containers behind
/// deterministic (sorted) accessors at module boundaries.
fn nondeterministic_iteration(lexed: &LexedFile, display_path: &str, out: &mut Vec<Finding>) {
    let text = lexed.stripped.as_bytes();
    let stripped = &lexed.stripped;

    // Pass 1: collect hash-typed names.
    let mut names: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        let mut search = 0usize;
        while let Some(pos) = stripped[search..].find(ty) {
            let pos = search + pos;
            search = pos + ty.len();
            if !word_bounded(text, pos, ty.len()) {
                continue;
            }
            // Walk back over an optional `std::collections::` path.
            let mut back = pos;
            for prefix in ["collections::", "std::"] {
                if stripped[..back].ends_with(prefix) {
                    back -= prefix.len();
                }
            }
            if let Some(name) = annotated_name(text, stripped, back) {
                names.push(name);
            } else if stripped[pos + ty.len()..].starts_with("::") {
                if let Some(name) = initialized_name(text, stripped, back) {
                    names.push(name);
                }
            }
        }
    }
    names.sort();
    names.dedup();

    // Pass 2: flag iteration-shaped uses of the tracked names.
    const ITER_METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
        ".drain(",
    ];
    for name in &names {
        let mut search = 0usize;
        while let Some(pos) = stripped[search..].find(name.as_str()) {
            let pos = search + pos;
            search = pos + name.len();
            if !word_bounded(text, pos, name.len()) {
                continue;
            }
            let after = skip_ws(text, pos + name.len());
            let tail = &stripped[after.min(stripped.len())..];
            let method_iteration = tail.starts_with('.')
                && ITER_METHODS.iter().any(|m| {
                    // Allow the chain to wrap: `.cells\n.iter()`.
                    let t = tail.trim_start_matches('.').trim_start();
                    m.strip_prefix('.').is_some_and(|m| t.starts_with(m))
                });
            let for_iteration = tail.starts_with('{') && for_loop_receiver(text, stripped, pos);
            if method_iteration || for_iteration {
                out.push(Finding {
                    file: display_path.to_string(),
                    line: lexed.line_of(pos),
                    lint: "nondeterministic-iteration",
                    message: format!(
                        "iteration over hash container `{name}`: order is random-seeded per \
                         process; sort before use (or BTreeMap/BTreeSet), or escape with an \
                         order-insensitivity argument"
                    ),
                });
            }
        }
    }
}

/// If the text right before `type_pos` is `name: [&][mut ]`, return `name`.
fn annotated_name(text: &[u8], stripped: &str, type_pos: usize) -> Option<String> {
    let mut i = type_pos;
    while i > 0 && text[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    // Through reference sigils and `mut`.
    loop {
        if i > 0 && text[i - 1] == b'&' {
            i -= 1;
            continue;
        }
        if stripped[..i].ends_with("mut ") {
            i -= 4;
            continue;
        }
        while i > 0 && text[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        break;
    }
    // A single annotation colon (not a `::` path).
    if i == 0 || text[i - 1] != b':' || (i >= 2 && text[i - 2] == b':') {
        return None;
    }
    i -= 1;
    while i > 0 && text[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    ident_ending_at(text, stripped, i)
}

/// If the text right before `type_pos` is `name = `, return `name`.
fn initialized_name(text: &[u8], stripped: &str, type_pos: usize) -> Option<String> {
    let mut i = type_pos;
    while i > 0 && text[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || text[i - 1] != b'=' {
        return None;
    }
    i -= 1;
    // Reject `==`, `+=`, `>=`, ...
    if i > 0
        && matches!(
            text[i - 1],
            b'=' | b'+' | b'-' | b'*' | b'/' | b'<' | b'>' | b'!'
        )
    {
        return None;
    }
    while i > 0 && text[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    ident_ending_at(text, stripped, i)
}

fn ident_ending_at(text: &[u8], stripped: &str, end: usize) -> Option<String> {
    let mut start = end;
    while start > 0 && is_ident(text[start - 1]) {
        start -= 1;
    }
    let name = &stripped[start..end];
    (!name.is_empty() && !name.as_bytes()[0].is_ascii_digit()).then(|| name.to_string())
}

/// Whether the name occurrence ending a `&other.name`-style chain at `pos`
/// is the subject of a `for .. in` loop.
fn for_loop_receiver(text: &[u8], stripped: &str, name_pos: usize) -> bool {
    // Walk back over the `a.b.name` receiver chain.
    let mut i = name_pos;
    while i > 0 && (is_ident(text[i - 1]) || text[i - 1] == b'.') {
        i -= 1;
    }
    // Then over reference sigils and `mut`, whitespace-separated.
    loop {
        let trimmed = stripped[..i].trim_end();
        if trimmed.ends_with('&') {
            i = trimmed.len() - 1;
        } else if trimmed.ends_with("mut")
            && (trimmed.len() == 3 || !is_ident(text[trimmed.len() - 4]))
        {
            i = trimmed.len() - 3;
        } else {
            break;
        }
    }
    let before = stripped[..i].trim_end();
    before.ends_with("in") && (before.len() == 2 || !is_ident(text[before.len() - 3]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(crate_name: &str, rel: &str, src: &str) -> Vec<Finding> {
        audit_file(crate_name, Path::new(rel), rel, src, None)
    }

    #[test]
    fn float_sort_unwrap_fires_across_lines_and_not_in_comments() {
        let src = "fn f(v: &mut Vec<f64>) {\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   // a.partial_cmp(b).unwrap() in a comment is fine\n\
                   v.sort_by(|a, b| {\n\
                   a.partial_cmp(&(b + 1.0))\n\
                   .unwrap()\n\
                   });\n\
                   let ordering = a.partial_cmp(b); // no unwrap: fine\n\
                   }\n";
        let f = findings("adawave-grid", "src/x.rs", src);
        let lines: Vec<usize> = f
            .iter()
            .filter(|f| f.lint == "float-sort-unwrap")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![2, 5]);
    }

    #[test]
    fn hash_iteration_is_flagged_only_in_result_crates() {
        let src = "use std::collections::HashMap;\n\
                   struct S { cells: HashMap<u64, f64> }\n\
                   impl S {\n\
                   fn sum(&self) -> f64 { self.cells.values().sum() }\n\
                   fn get(&self, k: u64) -> Option<&f64> { self.cells.get(&k) }\n\
                   }\n";
        let in_grid = findings("adawave-grid", "src/x.rs", src);
        assert_eq!(
            in_grid
                .iter()
                .filter(|f| f.lint == "nondeterministic-iteration")
                .map(|f| f.line)
                .collect::<Vec<_>>(),
            vec![4]
        );
        let in_cli = findings("adawave-cli", "src/x.rs", src);
        assert!(in_cli
            .iter()
            .all(|f| f.lint != "nondeterministic-iteration"));
    }

    #[test]
    fn for_loops_and_constructor_bindings_are_tracked() {
        let src = "fn f() {\n\
                   let mut seen = std::collections::HashSet::new();\n\
                   seen.insert(1);\n\
                   for x in &seen { use_it(x); }\n\
                   }\n";
        let f = findings("adawave-core", "src/x.rs", src);
        assert_eq!(
            f.iter().map(|f| (f.line, f.lint)).collect::<Vec<_>>(),
            vec![(4, "nondeterministic-iteration")]
        );
    }

    #[test]
    fn allows_suppress_and_unused_allows_are_reported() {
        let src = "struct S { cells: std::collections::HashMap<u64, f64> }\n\
                   impl S {\n\
                   fn dump(&self) -> Vec<(u64, f64)> {\n\
                   // audit:allow(nondeterministic-iteration) collected then sorted by caller\n\
                   let v: Vec<_> = self.cells.iter().map(|(&k, &v)| (k, v)).collect();\n\
                   v\n\
                   }\n\
                   }\n\
                   // audit:allow(nondeterministic-iteration) nothing here\n\
                   fn unrelated() {}\n";
        let f = findings("adawave-grid", "src/x.rs", src);
        assert!(f.iter().all(|f| f.lint != "nondeterministic-iteration"));
        let unused: Vec<_> = f.iter().filter(|f| f.lint == ESCAPE_LINT).collect();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line, 9);
        assert!(unused[0].message.contains("unused escape"));
    }

    #[test]
    fn allow_without_reason_and_unknown_lint_are_findings() {
        let src = "fn f(v: &mut Vec<f64>) {\n\
                   // audit:allow(float-sort-unwrap)\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   // audit:allow(flaot-sort-unwrap) typo\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   }\n";
        let f = findings("adawave-cli", "src/x.rs", src);
        assert!(
            f.iter()
                .any(|f| f.lint == ESCAPE_LINT && f.message.contains("needs a reason")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|f| f.lint == ESCAPE_LINT
                && f.message.contains("unknown lint")
                && f.message.contains("float-sort-unwrap")),
            "{f:?}"
        );
        // The typo'd allow suppresses nothing: line 5 still fires.
        assert!(f
            .iter()
            .any(|f| f.lint == "float-sort-unwrap" && f.line == 5));
    }

    #[test]
    fn request_path_scope_and_unwrap_or_is_clean() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   let a = x.unwrap_or(0);\n\
                   let b = x.unwrap();\n\
                   let c = x.expect(\"boom\");\n\
                   a + b + c\n\
                   }\n";
        let in_path = findings("adawave-serve", "src/json.rs", src);
        assert_eq!(
            in_path
                .iter()
                .filter(|f| f.lint == "panic-in-request-path")
                .map(|f| f.line)
                .collect::<Vec<_>>(),
            vec![3, 4]
        );
        // The same code outside the request path is not this lint's business.
        let outside = findings("adawave-serve", "src/client.rs", src);
        assert!(outside.iter().all(|f| f.lint != "panic-in-request-path"));
    }

    #[test]
    fn raw_thread_env_and_clock_lints_respect_crate_scope() {
        let src = "fn f() {\n\
                   std::thread::spawn(|| {});\n\
                   let t = std::env::var(\"X\");\n\
                   let now = std::time::Instant::now();\n\
                   }\n";
        let in_runtime = findings("adawave-runtime", "src/lib2.rs", src);
        assert!(in_runtime.iter().all(|f| f.lint != "raw-thread"));
        assert!(in_runtime.iter().all(|f| f.lint != "env-read"));
        let in_grid = findings("adawave-grid", "src/x.rs", src);
        assert!(in_grid
            .iter()
            .any(|f| f.lint == "raw-thread" && f.line == 2));
        assert!(in_grid.iter().any(|f| f.lint == "env-read" && f.line == 3));
        assert!(in_grid
            .iter()
            .any(|f| f.lint == "wall-clock" && f.line == 4));
        // CLI may read the clock (progress timing) but not spawn threads.
        let in_cli = findings("adawave-cli", "src/x.rs", src);
        assert!(in_cli.iter().all(|f| f.lint != "wall-clock"));
        assert!(in_cli.iter().any(|f| f.lint == "raw-thread"));
    }

    #[test]
    fn crate_hygiene_checks_lib_roots_only() {
        let src = "//! Docs.\n#![deny(missing_docs)]\nfn f() {}\n";
        let f = findings("adawave-grid", "src/lib.rs", src);
        assert_eq!(
            f.iter().map(|f| (f.line, f.lint)).collect::<Vec<_>>(),
            vec![(1, "crate-hygiene")]
        );
        assert!(f[0].message.contains("unsafe_code"));
        assert!(findings("adawave-grid", "src/other.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n\
                   }\n";
        assert!(findings("adawave-grid", "src/x.rs", src).is_empty());
    }

    #[test]
    fn unknown_lint_hint_suggests_names() {
        assert!(unknown_lint_hint("float-sort-unwrp").contains("float-sort-unwrap"));
        assert_eq!(unknown_lint_hint("zzzzzzzzzzzz"), "");
    }
}
