//! A minimal Rust lexer: just enough tokenization to know, for every byte
//! of a source file, whether it is *code*, *comment*, or *literal text*.
//!
//! The audit lints are textual pattern matches, and a pattern match inside
//! a string literal or a comment is never a finding — a doc example that
//! says `partial_cmp(..).unwrap()` must not trip the float-discipline
//! lint. This module therefore produces a *stripped* copy of the source in
//! which every comment and every string/char literal body is replaced by
//! spaces (newlines are preserved so line numbers survive), plus the
//! comment text per line (the escape syntax `// audit:allow(..)` lives in
//! comments) and the set of lines inside `#[cfg(test)]` items (test code
//! is exempt from the runtime contracts the lints enforce).
//!
//! Handled: line comments (`//`, `///`, `//!`), block comments with
//! nesting (`/* /* */ */`), string literals with escapes (`"a\"b"`), raw
//! strings with any hash count (`r"..."`, `r#"..."#`, `br##"..."##`),
//! byte strings (`b"..."`), char and byte literals (`'x'`, `b'\n'`), and
//! the lifetime-vs-char-literal ambiguity (`'static` is not a literal).

/// One file after lexing: the stripped text plus per-line metadata.
#[derive(Debug)]
pub struct LexedFile {
    /// Source with comment and literal bytes blanked to spaces. Same
    /// length and line structure as the input.
    pub stripped: String,
    /// `(line, text)` for every comment, 1-based, in file order. Block
    /// comments are attributed to the line they start on; their text
    /// keeps interior newlines.
    pub comments: Vec<(usize, String)>,
    /// `in_test[i]` is true when 1-based line `i + 1` is inside a
    /// `#[cfg(test)]` item (module, function, or impl).
    pub in_test: Vec<bool>,
}

impl LexedFile {
    /// Lex `source` into its stripped form.
    pub fn new(source: &str) -> Self {
        let (stripped, comments) = strip(source);
        let in_test = test_lines(&stripped);
        Self {
            stripped,
            comments,
            in_test,
        }
    }

    /// 1-based line number of byte `offset` in the stripped text.
    pub fn line_of(&self, offset: usize) -> usize {
        self.stripped[..offset]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1
    }

    /// Whether 1-based `line` falls inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Replace comments and literal bodies with spaces, collecting comments.
fn strip(source: &str) -> (String, Vec<(usize, String)>) {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push `n` bytes starting at `i` as blanks, preserving newlines.
    fn blank(out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize, line: &mut usize) {
        for &b in &bytes[from..to] {
            if b == b'\n' {
                out.push(b'\n');
                *line += 1;
            } else {
                out.push(b' ');
            }
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                let start_line = line;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push((start_line, source[start..i].to_string()));
                blank(&mut out, bytes, start, i, &mut line);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push((start_line, source[start..i].to_string()));
                blank(&mut out, bytes, start, i, &mut line);
            }
            b'"' => {
                // Plain string literal: blank the body, keep the quotes.
                out.push(b'"');
                i += 1;
                let body = i;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i = (i + 2).min(bytes.len()),
                        b'"' => break,
                        _ => i += 1,
                    }
                }
                blank(&mut out, bytes, body, i, &mut line);
                if i < bytes.len() {
                    out.push(b'"');
                    i += 1;
                }
            }
            b'r' | b'b' if raw_string_hashes(bytes, i).is_some() => {
                // Raw (byte) string: r"..", r#".."#, br##"..."##.
                let (prefix_len, hashes) = raw_string_hashes(bytes, i).unwrap();
                let start = i;
                i += prefix_len + hashes + 1; // past prefix, hashes, opening quote
                let body = i;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < bytes.len() && !bytes[i..].starts_with(&closer) {
                    i += 1;
                }
                // Emit the prefix/opening verbatim (it is code-ish and has
                // no newlines), blank the body, emit the closer.
                out.extend_from_slice(&bytes[start..body]);
                blank(&mut out, bytes, body, i, &mut line);
                if i < bytes.len() {
                    out.extend_from_slice(&closer);
                    i += closer.len();
                }
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'\'' => {
                // Byte literal b'x'.
                out.push(b'b');
                i += 1;
                consume_char_literal(bytes, &mut i, &mut out, &mut line);
            }
            b'\'' => {
                if is_char_literal(bytes, i) {
                    consume_char_literal(bytes, &mut i, &mut out, &mut line);
                } else {
                    // A lifetime: keep the tick, move on.
                    out.push(b'\'');
                    i += 1;
                }
            }
            b'\n' => {
                out.push(b'\n');
                line += 1;
                i += 1;
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    (
        String::from_utf8(out).expect("stripping preserves UTF-8 structure"),
        comments,
    )
}

/// If `bytes[i..]` starts a raw string (`r`/`b` prefix combination followed
/// by hashes and a quote), return `(prefix_len, hash_count)`.
fn raw_string_hashes(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    // Raw strings must not be preceded by an identifier character —
    // `wrapper` contains `r"` nowhere, but `for r in ..` must not misfire
    // on `r` followed by something else; we only look at r/br/rb forms.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    let mut j = i;
    let mut saw_r = false;
    for _ in 0..2 {
        match bytes.get(j) {
            Some(b'r') if !saw_r => {
                saw_r = true;
                j += 1;
            }
            Some(b'b') if j == i => j += 1,
            _ => break,
        }
    }
    if !saw_r {
        return None;
    }
    let prefix_len = j - i;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some((prefix_len, hashes))
}

/// Whether the `'` at `i` opens a char literal rather than a lifetime.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if c != b'\'' => {
            // 'x' is a literal iff a closing tick follows the (possibly
            // multi-byte) character; 'static has none.
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
                j += 1; // skip UTF-8 continuation bytes
            }
            bytes.get(j) == Some(&b'\'')
        }
        _ => false,
    }
}

/// Consume a char/byte literal starting at the tick, blanking its body.
fn consume_char_literal(bytes: &[u8], i: &mut usize, out: &mut Vec<u8>, line: &mut usize) {
    out.push(b'\'');
    *i += 1;
    let body = *i;
    while *i < bytes.len() {
        match bytes[*i] {
            b'\\' => *i = (*i + 2).min(bytes.len()),
            b'\'' => break,
            _ => *i += 1,
        }
    }
    for &b in &bytes[body..*i] {
        if b == b'\n' {
            out.push(b'\n');
            *line += 1;
        } else {
            out.push(b' ');
        }
    }
    if *i < bytes.len() {
        out.push(b'\'');
        *i += 1;
    }
}

/// Mark the lines covered by `#[cfg(test)]` items in stripped text.
///
/// After an (optionally multi-line) `#[cfg(test)]` attribute, the item it
/// decorates extends to the end of its first balanced `{ ... }` block (a
/// module, fn, or impl), or to the first `;` when no block opens first.
fn test_lines(stripped: &str) -> Vec<bool> {
    let line_count = stripped.lines().count().max(1);
    let mut in_test = vec![false; line_count];
    let bytes = stripped.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = stripped[search..].find("#[cfg(test)]") {
        let attr_start = search + pos;
        let mut i = attr_start + "#[cfg(test)]".len();
        // Skip further attributes (e.g. `#[allow(..)]`) between the cfg
        // and the item.
        loop {
            while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                i += 1;
            }
            if bytes.get(i) == Some(&b'#') {
                while i < bytes.len() && bytes[i] != b'\n' && bytes[i] != b']' {
                    i += 1;
                }
                i += 1;
            } else {
                break;
            }
        }
        // Walk to the item's opening brace or terminating semicolon.
        let mut depth = 0usize;
        let mut end = i;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        let first_line = stripped[..attr_start]
            .bytes()
            .filter(|&b| b == b'\n')
            .count();
        let last_line = stripped[..end.min(bytes.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count();
        for flag in in_test
            .iter_mut()
            .take((last_line + 1).min(line_count))
            .skip(first_line)
        {
            *flag = true;
        }
        search = end.max(attr_start + 1);
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_collected() {
        let lexed = LexedFile::new("let x = 1; // partial_cmp\nlet y = 2;\n");
        assert!(!lexed.stripped.contains("partial_cmp"));
        assert!(lexed.stripped.contains("let x = 1;"));
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].0, 1);
        assert!(lexed.comments[0].1.contains("partial_cmp"));
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let src = "a /* outer /* inner */ still outer */ b\nc\n";
        let lexed = LexedFile::new(src);
        assert!(lexed.stripped.contains('a'));
        assert!(lexed.stripped.contains('b'));
        assert!(!lexed.stripped.contains("outer"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].1.contains("inner"));
    }

    #[test]
    fn block_comment_spanning_lines_preserves_line_numbers() {
        let src = "x\n/* one\ntwo\nthree */\ny = unwrap\n";
        let lexed = LexedFile::new(src);
        let offset = lexed.stripped.find("unwrap").unwrap();
        assert_eq!(lexed.line_of(offset), 5);
        assert_eq!(lexed.comments[0].0, 2);
    }

    #[test]
    fn comment_start_inside_string_literal_is_not_a_comment() {
        let src = "let url = \"https://example.com\"; let z = 3;\n";
        let lexed = LexedFile::new(src);
        assert!(lexed.comments.is_empty());
        assert!(lexed.stripped.contains("let z = 3;"));
        assert!(!lexed.stripped.contains("example"));
    }

    #[test]
    fn string_escapes_do_not_end_the_literal_early() {
        let src = r#"let s = "a\"b//c"; let tail = 9;"#;
        let lexed = LexedFile::new(src);
        assert!(lexed.comments.is_empty());
        assert!(lexed.stripped.contains("let tail = 9;"));
        assert!(!lexed.stripped.contains("//c"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let p = r#\"unwrap() \"quoted\" //nope\"#; let q = 1;\n";
        let lexed = LexedFile::new(src);
        assert!(!lexed.stripped.contains("unwrap"));
        assert!(!lexed.stripped.contains("nope"));
        assert!(lexed.stripped.contains("let q = 1;"));
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn byte_raw_strings_and_plain_identifiers_starting_with_r() {
        let src = "let raw = br##\"body\"##; for r in rows { r.touch(); }\n";
        let lexed = LexedFile::new(src);
        assert!(!lexed.stripped.contains("body"));
        assert!(lexed.stripped.contains("for r in rows"));
        assert!(lexed.stripped.contains("r.touch()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let n = '\\n'; }\n";
        let lexed = LexedFile::new(src);
        assert!(lexed.stripped.contains("fn f<'a>(x: &'a str)"));
        // The literal bodies are blanked; the surrounding code survives.
        assert!(lexed.stripped.contains("let c = '"));
        assert!(lexed.stripped.contains("let n = '"));
    }

    #[test]
    fn comment_marker_inside_char_literal() {
        let src = "let slash = '/'; let also = '/'; // real comment\n";
        let lexed = LexedFile::new(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].1.contains("real comment"));
    }

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lexed = LexedFile::new(src);
        assert!(!lexed.is_test_line(1));
        assert!(lexed.is_test_line(2));
        assert!(lexed.is_test_line(3));
        assert!(lexed.is_test_line(4));
        assert!(lexed.is_test_line(5));
        assert!(!lexed.is_test_line(6));
    }

    #[test]
    fn cfg_test_with_extra_attribute_covers_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n  fn x() {}\n}\nfn live() {}\n";
        let lexed = LexedFile::new(src);
        assert!(lexed.is_test_line(4));
        assert!(!lexed.is_test_line(6));
    }

    #[test]
    fn line_of_maps_offsets_to_lines() {
        let lexed = LexedFile::new("one\ntwo\nthree\n");
        let offset = lexed.stripped.find("three").unwrap();
        assert_eq!(lexed.line_of(offset), 3);
        assert_eq!(lexed.line_of(0), 1);
    }
}
