//! `adawave-audit` — a dependency-free static-analysis pass over the
//! AdaWave workspace.
//!
//! The repository's headline guarantees — bit-identical clustering results
//! across thread counts, batch partitions, and shards; the serve daemon's
//! no-panic request path; hex-float persistence — are pinned by test
//! suites but were historically easy to break at the source level: a new
//! `partial_cmp().unwrap()` or a hash-order `HashMap` iteration compiles
//! clean and only fails later, probabilistically. This crate makes those
//! contracts machine-checked at the source level.
//!
//! The pass is three small layers:
//!
//! * [`lexer`] — a minimal Rust lexer that blanks comments and
//!   string/char literals (preserving byte offsets and line structure) so
//!   lints never fire inside either, and that marks `#[cfg(test)]` items
//!   so test code is exempt.
//! * [`workspace`] — a `Cargo.toml` member walker that enumerates the
//!   non-vendor crates and their `src/` sources.
//! * [`lints`] — the lint table and per-file checks, plus the
//!   `// audit:allow(lint-name) <reason>` escape mechanism (itself
//!   linted: reasons are mandatory and unused allows are reported).
//!
//! Run it as `adawave audit` or the standalone `adawave-audit` binary.
//! Exit codes follow the workspace convention: `0` clean, `1` findings
//! (or an I/O failure), `2` usage error.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod workspace;

pub use lexer::LexedFile;
pub use lints::{audit_file, lint_by_name, unknown_lint_hint, Finding, Lint, ESCAPE_LINT, LINTS};
pub use workspace::{find_root, members, Crate};

use std::path::Path;

/// Audit every member of the workspace rooted at `root`.
///
/// `filter` restricts the pass to the named lints (`None` runs all).
/// Findings come back sorted by file, line, then lint name, ready to
/// print. Fails only on I/O or manifest-shape problems.
pub fn audit_workspace(root: &Path, filter: Option<&[&str]>) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for member in members(root)? {
        for source in &member.sources {
            let path = root.join(source);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel_to_member = source
                .strip_prefix(&member.rel_dir)
                .unwrap_or(source)
                .to_path_buf();
            let display = source.to_string_lossy().replace('\\', "/");
            findings.extend(audit_file(
                &member.name,
                &rel_to_member,
                &display,
                &text,
                filter,
            ));
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(findings)
}

/// The `--list` output: every lint with its summary and the contract it
/// enforces.
pub fn list_text() -> String {
    let mut out = String::from("lints enforced by adawave-audit:\n");
    for lint in LINTS {
        out.push_str(&format!("  {:26} {}\n", lint.name, lint.summary));
        out.push_str(&format!("  {:26}   contract: {}\n", "", lint.contract));
    }
    out.push_str(&format!(
        "  {:26} escape hygiene: audit:allow needs a real lint name and a reason, \
         and must suppress something\n",
        ESCAPE_LINT
    ));
    out.push_str(
        "\nescape syntax: // audit:allow(lint-name) <reason> — on the offending \
         line or alone on the line above\nexit codes: 0 clean, 1 findings, 2 usage\n",
    );
    out
}

/// Validate a user-supplied list of lint names, returning them with
/// `'static` lifetimes, or a usage message with a did-you-mean hint.
pub fn resolve_lint_names(names: &[String]) -> Result<Vec<&'static str>, String> {
    let mut resolved = Vec::with_capacity(names.len());
    for name in names {
        match lint_by_name(name) {
            Some(lint) => resolved.push(lint.name),
            None => {
                return Err(format!(
                    "unknown lint '{name}'{} (try --list)",
                    unknown_lint_hint(name)
                ))
            }
        }
    }
    Ok(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_lint_names_accepts_known_and_hints_unknown() {
        let ok = resolve_lint_names(&["wall-clock".into(), "env-read".into()]).unwrap();
        assert_eq!(ok, vec!["wall-clock", "env-read"]);
        let err = resolve_lint_names(&["wall-clok".into()]).unwrap_err();
        assert!(err.contains("wall-clock"), "{err}");
    }

    #[test]
    fn list_text_names_every_lint() {
        let text = list_text();
        for lint in LINTS {
            assert!(text.contains(lint.name));
        }
        assert!(text.contains("audit:allow"));
    }
}
