//! Workspace discovery: find the root `Cargo.toml`, enumerate member
//! crates, and collect each member's non-test Rust sources.
//!
//! The walker is deliberately minimal — it reads the `members = [...]`
//! array of the workspace manifest and each member's `name = "..."` line
//! rather than parsing TOML in general. That is all the audit needs, and
//! it keeps the crate dependency-free.

use std::path::{Path, PathBuf};

/// One workspace member selected for auditing.
#[derive(Debug, Clone)]
pub struct Crate {
    /// Package name from the member's `Cargo.toml` (e.g. `adawave-grid`).
    pub name: String,
    /// Member directory relative to the workspace root (e.g. `crates/grid`).
    pub rel_dir: PathBuf,
    /// The member's `.rs` sources under `src/`, relative to the workspace
    /// root, sorted for deterministic diagnostics. Integration tests
    /// (`tests/`), benches, and examples are intentionally excluded: the
    /// contracts the lints enforce are about shipped code, and test code
    /// uses `unwrap` legitimately.
    pub sources: Vec<PathBuf>,
}

/// Find the workspace root at or above `start`: the nearest ancestor whose
/// `Cargo.toml` contains a `[workspace]` section.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Enumerate the audited members of the workspace rooted at `root`.
///
/// Members under `vendor/` are skipped: they are offline stand-ins for
/// third-party crates and do not carry this repository's contracts.
/// The root package itself (the umbrella crate) is audited when the
/// workspace manifest also declares `[package]`.
pub fn members(root: &Path) -> Result<Vec<Crate>, String> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;

    let mut dirs: Vec<PathBuf> = member_dirs(&manifest)
        .into_iter()
        .filter(|d| !d.starts_with("vendor"))
        .collect();
    if manifest.lines().any(|l| l.trim() == "[package]") {
        dirs.push(PathBuf::from("."));
    }
    dirs.sort();
    dirs.dedup();

    let mut crates = Vec::with_capacity(dirs.len());
    for rel_dir in dirs {
        let member_manifest = root.join(&rel_dir).join("Cargo.toml");
        let text = std::fs::read_to_string(&member_manifest)
            .map_err(|e| format!("cannot read {}: {e}", member_manifest.display()))?;
        let name = package_name(&text)
            .ok_or_else(|| format!("no package name in {}", member_manifest.display()))?;
        let src_dir = root.join(&rel_dir).join("src");
        let mut sources = Vec::new();
        collect_rs(&src_dir, &mut sources)?;
        sources.sort();
        let sources = sources
            .into_iter()
            .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
            .collect();
        crates.push(Crate {
            name,
            rel_dir,
            sources,
        });
    }
    crates.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(crates)
}

/// The entries of the manifest's `members = [ ... ]` array.
fn member_dirs(manifest: &str) -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if !in_members {
            if let Some(rest) = line.strip_prefix("members") {
                let rest = rest
                    .trim_start()
                    .strip_prefix('=')
                    .unwrap_or("")
                    .trim_start();
                if let Some(rest) = rest.strip_prefix('[') {
                    in_members = true;
                    push_quoted(rest, &mut dirs);
                    if rest.contains(']') {
                        break;
                    }
                }
            }
        } else {
            push_quoted(line, &mut dirs);
            if line.contains(']') {
                break;
            }
        }
    }
    dirs
}

/// Append every `"quoted"` path fragment of `line` to `dirs`.
fn push_quoted(line: &str, dirs: &mut Vec<PathBuf>) {
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        dirs.push(PathBuf::from(&rest[open + 1..open + 1 + close]));
        rest = &rest[open + 2 + close..];
    }
}

/// The first `name = "..."` in a member manifest.
fn package_name(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start().strip_prefix('=')?.trim();
            let rest = rest.strip_prefix('"')?;
            return rest.split('"').next().map(str::to_string);
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        // A member without src/ (nothing to audit) is fine.
        Err(_) => return Ok(()),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot walk {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_array_parsing_handles_comments_and_inline_forms() {
        let manifest = r#"
[workspace]
members = [
    "crates/api",   # the API crate
    "crates/grid",
    "vendor/criterion",
]
"#;
        let dirs = member_dirs(manifest);
        assert_eq!(
            dirs,
            vec![
                PathBuf::from("crates/api"),
                PathBuf::from("crates/grid"),
                PathBuf::from("vendor/criterion")
            ]
        );
        let inline = member_dirs(r#"members = ["a", "b"]"#);
        assert_eq!(inline, vec![PathBuf::from("a"), PathBuf::from("b")]);
    }

    #[test]
    fn package_name_reads_the_first_name_line() {
        let text = "[package]\nname = \"adawave-audit\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(text).as_deref(), Some("adawave-audit"));
        assert_eq!(package_name("[package]\n"), None);
    }

    #[test]
    fn live_workspace_discovery_finds_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("audit crate lives in a workspace");
        let crates = members(&root).expect("workspace members parse");
        assert!(crates.iter().any(|c| c.name == "adawave-audit"));
        assert!(crates.iter().any(|c| c.name == "adawave-grid"));
        // vendor stand-ins are excluded from the audit.
        assert!(!crates.iter().any(|c| c.name == "criterion"));
        // Every listed source exists and is a file under the root.
        for c in &crates {
            for s in &c.sources {
                assert!(root.join(s).is_file(), "{}", s.display());
            }
        }
    }
}
